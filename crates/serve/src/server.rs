//! The analysis server: routing, the worker pool, and graceful drain.
//!
//! [`ServerState::handle`] is a pure `Request → Response` dispatcher — no
//! sockets — so the API surface can be unit-tested and benchmarked
//! in-process. [`Server`] wraps it in the runtime: a nonblocking accept
//! loop feeding a bounded queue of connections, a pool of worker threads
//! draining it, and a drain protocol (stop accepting, let in-flight
//! connections finish, join the workers) triggered by `SIGTERM`/`SIGINT`
//! or `POST /v1/shutdown`.
//!
//! Every `/v1/analyze` response is byte-identical to `argus analyze
//! --json` on the same program and options: the handler renders the same
//! [`TerminationReport`] JSON (plus the CLI's trailing newline), whether
//! the report was just computed or served from the content-addressed
//! [`ReportCache`]. The `x-argus-cache` response header says which
//! (`hit`, `miss`, or `bypass` for `stats` requests, which skip the
//! report cache so their `run_stats` match a fresh CLI run exactly).

use crate::cache::ReportCache;
use crate::http::{read_request, write_response, Limits, ReadError, Request, Response};
use crate::jsonval::{self, json_str, Json};
use crate::metrics::Metrics;
use argus_core::par::{effective_workers, par_map_indexed};
use argus_core::{
    analyze_with_caches, infer_conditions_for, AnalysisOptions, BackwardsOptions, DeltaMode,
    ProjectionCache, SccCache,
};
use argus_diag::render::{render_json, render_text};
use argus_diag::{lint_source, Diagnostic, LintOptions, Severity};
use argus_linear::FmTier;
use argus_logic::modes::Adornment;
use argus_logic::parser::parse_program;
use argus_logic::span::{LineIndex, Span};
use argus_logic::{Norm, PredKey, Program};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Most items accepted in one `/v1/batch` envelope.
pub const MAX_BATCH_ITEMS: usize = 256;

/// Server configuration (`argus serve` flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7177` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (0 = one per available core).
    pub jobs: usize,
    /// Combined byte budget for the caches, in MiB (half to the report
    /// cache, a quarter to the condition cache, an eighth each to the
    /// projection and per-SCC caches; `0` keeps at most one resident
    /// entry per cache).
    pub cache_mb: usize,
    /// Directory for the persistent per-SCC cache, shared with `argus
    /// analyze --incremental --cache-dir`. `None` keeps the SCC memo
    /// in-memory only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Per-request wall-clock analysis deadline, in milliseconds.
    pub deadline_ms: u64,
    /// Reading-side limits (body cap, head cap, read timeout).
    pub limits: Limits,
    /// Accepted connections queued ahead of the workers before the
    /// server answers 503 inline.
    pub queue_depth: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7177".to_string(),
            jobs: 0,
            cache_mb: 64,
            cache_dir: None,
            deadline_ms: 10_000,
            limits: Limits::default(),
            queue_depth: 256,
        }
    }
}

/// Shared per-process state: options, caches, counters, drain flag.
pub struct ServerState {
    options: ServeOptions,
    /// Live counters surfaced by `GET /metrics`.
    pub metrics: Metrics,
    reports: ReportCache,
    conditions: ReportCache,
    projections: ProjectionCache,
    scc: SccCache,
    started: Instant,
    draining: AtomicBool,
}

/// How an analyze response relates to the report cache.
enum AnalyzeOutcome {
    /// A rendered report body (already newline-terminated).
    Report {
        body: Vec<u8>,
        /// `hit` | `miss` | `bypass` (the `x-argus-cache` header value).
        cache: &'static str,
    },
    /// A request-level failure; `error_obj` is the inner JSON object.
    Error { status: u16, error_obj: String },
}

/// Top-level keys accepted by `/v1/analyze` (and batch items).
const ANALYZE_KEYS: [&str; 12] = [
    "program",
    "query",
    "adornment",
    "norm",
    "delta",
    "no_transform",
    "lexicographic",
    "jobs",
    "fm_tier",
    "no_fm_cache",
    "stats",
    "engine",
];

/// Top-level keys accepted by `/v1/infer`.
const INFER_KEYS: [&str; 5] = ["program", "predicates", "jobs", "max_arity", "no_propagate"];

/// The cache key [`ServerState::prepare`] builds for an analyze request
/// with every option left at its default — the shape a condition
/// inference's probes ran with, so primed entries answer exactly those
/// future requests.
fn default_analyze_key(query: &PredKey, adornment: &Adornment, src: &str) -> String {
    let defaults = AnalysisOptions::default();
    format!(
        "argus/v1\u{1}q={query}\u{1}a={adornment}\u{1}norm=structural\u{1}\
         delta=paper\u{1}transform={}\u{1}lex=0\u{1}tier={}\u{1}fmcache=1\u{1}\
         engine=theta\u{1}\n{src}",
        defaults.transform_phases,
        defaults.fm_tier.index(),
    )
}

/// One validated analyze request.
struct Prepared {
    program: Program,
    query: PredKey,
    adornment: Adornment,
    options: AnalysisOptions,
    stats: bool,
    /// Validated engine tag: `theta` (default, classic report JSON), a
    /// single engine id, or `portfolio` (racing, `argus-engine/v1` JSON).
    engine: &'static str,
    /// Canonical content address (everything that determines the bytes).
    cache_key: String,
    /// Whether to use the process-lifetime projection cache.
    share_projections: bool,
}

/// Resolve a validated engine tag to the engine list and race flag, as
/// the CLI does: `portfolio` races the full registry, a single id runs
/// that engine alone un-raced.
fn engines_for(tag: &str) -> (Vec<Box<dyn argus_core::Engine>>, bool) {
    if tag == "portfolio" {
        (argus_baselines::standard_engines(), true)
    } else {
        (vec![argus_baselines::engine_by_id(tag).expect("validated engine tag")], false)
    }
}

impl ServerState {
    /// Fresh state for `options`.
    pub fn new(options: ServeOptions) -> ServerState {
        let budget = options.cache_mb.saturating_mul(1024 * 1024);
        let scc_budget = (budget / 8).max(1);
        let scc = match &options.cache_dir {
            Some(dir) => SccCache::with_disk(scc_budget, dir.clone()),
            None => SccCache::new(scc_budget),
        };
        ServerState {
            metrics: Metrics::default(),
            reports: ReportCache::new((budget / 2).max(1)),
            conditions: ReportCache::new((budget / 4).max(1)),
            projections: ProjectionCache::with_byte_budget((budget / 8).max(1)),
            scc,
            started: Instant::now(),
            draining: AtomicBool::new(false),
            options,
        }
    }

    /// The configuration this state was built with.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The content-addressed report cache.
    pub fn reports(&self) -> &ReportCache {
        &self.reports
    }

    /// The content-addressed termination-condition cache.
    pub fn conditions(&self) -> &ReportCache {
        &self.conditions
    }

    /// The process-lifetime projection cache.
    pub fn projections(&self) -> &ProjectionCache {
        &self.projections
    }

    /// The per-SCC incremental memo (persistent when `--cache-dir` is
    /// set).
    pub fn scc_cache(&self) -> &SccCache {
        &self.scc
    }

    /// Stop accepting new connections; in-flight requests finish.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Has a drain been requested?
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The `GET /metrics` document (no trailing newline).
    pub fn metrics_snapshot(&self) -> String {
        self.metrics.snapshot_json(
            self.started.elapsed(),
            &self.reports,
            &self.conditions,
            &self.projections,
            &self.scc,
        )
    }

    /// Dispatch one request, recording response metrics.
    pub fn handle(&self, req: &Request) -> Response {
        let resp = self.route(req);
        if resp.status == 400 {
            self.metrics.malformed_requests.fetch_add(1, Ordering::Relaxed);
        }
        if resp.status == 504 {
            self.metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.count_status(resp.status);
        resp
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                self.metrics.healthz_requests.fetch_add(1, Ordering::Relaxed);
                Response::json(200, "{\"status\":\"ok\"}\n")
            }
            ("GET", "/metrics") => {
                self.metrics.metrics_requests.fetch_add(1, Ordering::Relaxed);
                Response::json(200, format!("{}\n", self.metrics_snapshot()))
            }
            ("POST", "/v1/analyze") => self.handle_analyze(req),
            ("POST", "/v1/batch") => self.handle_batch(req),
            ("POST", "/v1/infer") => self.handle_infer(req),
            ("POST", "/v1/lint") => self.handle_lint(req),
            ("POST", "/v1/shutdown") => {
                self.begin_drain();
                Response::json(200, "{\"status\":\"draining\"}\n").closing()
            }
            (_, "/healthz" | "/metrics") => {
                error_response(405, "method not allowed", &[]).with_header("allow", "GET")
            }
            (_, "/v1/analyze" | "/v1/batch" | "/v1/infer" | "/v1/lint" | "/v1/shutdown") => {
                error_response(405, "method not allowed", &[]).with_header("allow", "POST")
            }
            (_, path) => error_response(404, &format!("no such endpoint {path}"), &[]),
        }
    }

    fn handle_analyze(&self, req: &Request) -> Response {
        self.metrics.analyze_requests.fetch_add(1, Ordering::Relaxed);
        let v = match parse_body_json(&req.body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        match self.analyze_value(&v) {
            AnalyzeOutcome::Report { body, cache } => {
                Response::json(200, body).with_header("x-argus-cache", cache)
            }
            AnalyzeOutcome::Error { status, error_obj } => {
                Response::json(status, format!("{{\"error\":{error_obj}}}\n"))
            }
        }
    }

    fn handle_batch(&self, req: &Request) -> Response {
        self.metrics.batch_requests.fetch_add(1, Ordering::Relaxed);
        let v = match parse_body_json(&req.body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let Json::Obj(map) = &v else {
            return error_response(
                400,
                &format!("batch request must be a JSON object, got {}", v.type_name()),
                &[],
            );
        };
        if let Some(key) = map.keys().find(|k| k.as_str() != "items") {
            return error_response(400, &format!("unknown batch key {key:?}"), &[]);
        }
        let Some(items) = v.get("items").and_then(Json::as_array) else {
            return error_response(400, "batch request wants an \"items\" array", &[]);
        };
        if items.len() > MAX_BATCH_ITEMS {
            return error_response(
                400,
                &format!("batch of {} items exceeds the {MAX_BATCH_ITEMS}-item cap", items.len()),
                &[("limit", MAX_BATCH_ITEMS.to_string())],
            );
        }
        self.metrics.batch_items.fetch_add(items.len() as u64, Ordering::Relaxed);
        let workers = effective_workers(0, items.len());
        let results = par_map_indexed(items, workers, |_, item| match self.analyze_value(item) {
            AnalyzeOutcome::Report { body, .. } => {
                let text = String::from_utf8(body).expect("report bodies are UTF-8");
                format!("{{\"status\":200,\"report\":{}}}", text.trim_end())
            }
            AnalyzeOutcome::Error { status, error_obj } => {
                format!("{{\"status\":{status},\"error\":{error_obj}}}")
            }
        });
        Response::json(200, format!("{{\"results\":[{}]}}\n", results.join(",")))
    }

    fn handle_infer(&self, req: &Request) -> Response {
        self.metrics.infer_requests.fetch_add(1, Ordering::Relaxed);
        let v = match parse_body_json(&req.body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        match self.infer_value(&v) {
            AnalyzeOutcome::Report { body, cache } => {
                Response::json(200, body).with_header("x-argus-cache", cache)
            }
            AnalyzeOutcome::Error { status, error_obj } => {
                Response::json(status, format!("{{\"error\":{error_obj}}}\n"))
            }
        }
    }

    /// Run one `/v1/infer` request: look the condition table up in the
    /// content-addressed cache, or compute it and prime the analyze
    /// report cache with every probe the inference already paid for.
    fn infer_value(&self, v: &Json) -> AnalyzeOutcome {
        let bad = |message: String| AnalyzeOutcome::Error {
            status: 400,
            error_obj: error_obj(400, &message, &[]),
        };
        let Json::Obj(map) = v else {
            return bad(format!("request must be a JSON object, got {}", v.type_name()));
        };
        if let Some(key) = map.keys().find(|k| !INFER_KEYS.contains(&k.as_str())) {
            return bad(format!("unknown key {key:?}"));
        }
        let Some(Json::Str(src)) = map.get("program") else {
            return bad("missing required key \"program\" (a string)".to_string());
        };
        let mut options = BackwardsOptions { collect_reports: true, ..BackwardsOptions::default() };
        options.analysis.parallelism = 1;
        match map.get("jobs") {
            None | Some(Json::Null) => {}
            Some(other) => match other.as_u64() {
                Some(n) => options.analysis.parallelism = n as usize,
                None => {
                    return bad(format!(
                        "\"jobs\" must be a nonnegative integer, got {}",
                        other.type_name()
                    ));
                }
            },
        }
        match map.get("max_arity") {
            None | Some(Json::Null) => {}
            Some(other) => match other.as_u64() {
                Some(n) => options.max_arity = n as usize,
                None => {
                    return bad(format!(
                        "\"max_arity\" must be a nonnegative integer, got {}",
                        other.type_name()
                    ));
                }
            },
        }
        match map.get("no_propagate") {
            None | Some(Json::Null) => {}
            Some(Json::Bool(b)) => options.propagate = !b,
            Some(other) => {
                return bad(format!(
                    "\"no_propagate\" must be a boolean, got {}",
                    other.type_name()
                ));
            }
        }

        let program = match parse_program(src) {
            Ok(p) => p,
            Err(e) => {
                let (status, error_obj) = program_parse_error(src, &e);
                return AnalyzeOutcome::Error { status, error_obj };
            }
        };
        let idb = program.idb_predicates();
        let mut preds_tag = "*".to_string();
        let mut wanted = idb.clone();
        match map.get("predicates") {
            None | Some(Json::Null) => {}
            Some(Json::Arr(items)) => {
                let mut set = std::collections::BTreeSet::new();
                for item in items {
                    let Json::Str(spec) = item else {
                        return bad(format!(
                            "\"predicates\" entries must be name/arity strings, got {}",
                            item.type_name()
                        ));
                    };
                    let parsed = spec.rsplit_once('/').and_then(|(name, arity)| {
                        arity.parse::<usize>().ok().map(|a| PredKey::new(name, a))
                    });
                    let Some(key) = parsed else {
                        return bad(format!("bad predicate spec {spec:?} (want name/arity)"));
                    };
                    if !idb.contains(&key) {
                        let defined: Vec<PredKey> = idb.iter().cloned().collect();
                        let mut message = format!("predicate {key} is not defined in the program");
                        if let Some(hit) = argus_diag::passes::best_typo_candidate(&key, &defined) {
                            message.push_str(&format!(" (did you mean `{hit}`?)"));
                        }
                        return AnalyzeOutcome::Error {
                            status: 422,
                            error_obj: error_obj(422, &message, &[]),
                        };
                    }
                    set.insert(key);
                }
                preds_tag = set.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(",");
                wanted = set;
            }
            Some(other) => {
                return bad(format!("\"predicates\" must be an array, got {}", other.type_name()));
            }
        }

        let cache_key = format!(
            "argus-infer/v1\u{1}preds={preds_tag}\u{1}maxarity={}\u{1}propagate={}\u{1}\n{src}",
            options.max_arity, options.propagate as u8,
        );
        let started = Instant::now();
        if let Some(body) = self.conditions.get(&cache_key) {
            self.metrics.analyze_latency_cached.record(started.elapsed());
            return AnalyzeOutcome::Report { body: body.to_vec(), cache: "hit" };
        }
        let deadline = Instant::now() + Duration::from_millis(self.options.deadline_ms);
        options.analysis.deadline = Some(deadline);
        let report = infer_conditions_for(&program, &wanted, &options);
        if report.partial || Instant::now() >= deadline {
            // A deadline abort leaves conditions (and probe reports) that
            // reflect interrupted analyses: discard rather than cache.
            let message =
                format!("inference exceeded the {} ms deadline", self.options.deadline_ms);
            return AnalyzeOutcome::Error {
                status: 504,
                error_obj: error_obj(
                    504,
                    &message,
                    &[("deadline_ms", self.options.deadline_ms.to_string())],
                ),
            };
        }
        // Every probe that reached a default-analyzer verdict is a future
        // `/v1/analyze` answer the inference already paid for: prime the
        // report cache under the exact key `prepare` would build.
        for primed in &report.reports {
            let key = default_analyze_key(&primed.query, &primed.adornment, src);
            self.reports.put(&key, Arc::from(format!("{}\n", primed.json).into_bytes()));
        }
        self.metrics.infer_predicates.fetch_add(report.conditions.len() as u64, Ordering::Relaxed);
        self.metrics.infer_analyses.fetch_add(report.analyses as u64, Ordering::Relaxed);
        self.metrics.infer_primed.fetch_add(report.reports.len() as u64, Ordering::Relaxed);
        let body = format!("{}\n", report.to_json()).into_bytes();
        self.metrics.analyze_latency_computed.record(started.elapsed());
        self.conditions.put(&cache_key, Arc::from(body.clone().into_boxed_slice()));
        AnalyzeOutcome::Report { body, cache: "miss" }
    }

    fn handle_lint(&self, req: &Request) -> Response {
        self.metrics.lint_requests.fetch_add(1, Ordering::Relaxed);
        let v = match parse_body_json(&req.body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let Json::Obj(map) = &v else {
            return error_response(
                400,
                &format!("lint request must be a JSON object, got {}", v.type_name()),
                &[],
            );
        };
        if let Some(key) = map.keys().find(|k| !matches!(k.as_str(), "program" | "query" | "mode"))
        {
            return error_response(400, &format!("unknown lint key {key:?}"), &[]);
        }
        let Some(program) = v.get("program").and_then(Json::as_str) else {
            return error_response(400, "lint request wants a \"program\" string", &[]);
        };
        let query = v.get("query").and_then(Json::as_str);
        let mode = v.get("mode").and_then(Json::as_str);
        let mut options = LintOptions::default();
        match (query, mode) {
            (None, None) => {}
            (Some(q), Some(m)) => match argus_diag::moded::parse_query_spec(q, m) {
                Ok(spec) => options.query = Some(spec),
                Err(e) => return error_response(400, &e, &[]),
            },
            _ => {
                return error_response(400, "\"query\" and \"mode\" must be given together", &[]);
            }
        }
        let diags = lint_source(program, &options);
        Response::json(200, render_json(&diags, "request"))
    }

    /// Run one analyze request (an `/v1/analyze` body or a batch item).
    fn analyze_value(&self, v: &Json) -> AnalyzeOutcome {
        let prepared = match self.prepare(v) {
            Ok(p) => p,
            Err((status, error_obj)) => return AnalyzeOutcome::Error { status, error_obj },
        };
        let started = Instant::now();
        if !prepared.stats {
            if let Some(body) = self.reports.get(&prepared.cache_key) {
                self.metrics.analyze_latency_cached.record(started.elapsed());
                return AnalyzeOutcome::Report { body: body.to_vec(), cache: "hit" };
            }
        }
        let deadline = Instant::now() + Duration::from_millis(self.options.deadline_ms);
        let mut options = prepared.options;
        options.deadline = Some(deadline);
        if prepared.engine != "theta" {
            // Engine-selected requests render `argus-engine/v1` bodies;
            // they share the report cache (the engine tag is part of the
            // cache key) but not the FM projection cache, which only the
            // θ pipeline reads.
            let (engines, race) = engines_for(prepared.engine);
            let memo = if prepared.stats { None } else { Some(&self.scc) };
            let report = argus_core::run_portfolio_with_memo(
                &engines,
                &prepared.program,
                &prepared.query,
                &prepared.adornment,
                &options,
                options.parallelism,
                race,
                memo,
            );
            if Instant::now() >= deadline {
                let message =
                    format!("analysis exceeded the {} ms deadline", self.options.deadline_ms);
                return AnalyzeOutcome::Error {
                    status: 504,
                    error_obj: error_obj(
                        504,
                        &message,
                        &[("deadline_ms", self.options.deadline_ms.to_string())],
                    ),
                };
            }
            let body = format!("{}\n", report.to_json(prepared.stats)).into_bytes();
            self.metrics.analyze_latency_computed.record(started.elapsed());
            if prepared.stats {
                return AnalyzeOutcome::Report { body, cache: "bypass" };
            }
            self.reports.put(&prepared.cache_key, Arc::from(body.clone().into_boxed_slice()));
            return AnalyzeOutcome::Report { body, cache: "miss" };
        }
        // `stats` requests always get a fresh per-run cache (and no SCC
        // memo) so their `run_stats` are byte-identical to `argus analyze
        // --stats --json`.
        let shared = if prepared.share_projections && !prepared.stats {
            Some(&self.projections)
        } else {
            None
        };
        let memo = if prepared.stats { None } else { Some(&self.scc) };
        let report = analyze_with_caches(
            &prepared.program,
            &prepared.query,
            prepared.adornment,
            &options,
            shared,
            memo,
        );
        for scc in &report.sccs {
            self.metrics.fm.merge(&scc.stats.fm);
        }
        if Instant::now() >= deadline {
            // The report may have been degraded by a mid-flight FM abort:
            // discard it rather than cache or present a fake verdict.
            let message = format!("analysis exceeded the {} ms deadline", self.options.deadline_ms);
            return AnalyzeOutcome::Error {
                status: 504,
                error_obj: error_obj(
                    504,
                    &message,
                    &[("deadline_ms", self.options.deadline_ms.to_string())],
                ),
            };
        }
        let body = format!("{}\n", report.to_json_with(prepared.stats)).into_bytes();
        self.metrics.analyze_latency_computed.record(started.elapsed());
        if prepared.stats {
            return AnalyzeOutcome::Report { body, cache: "bypass" };
        }
        self.reports.put(&prepared.cache_key, Arc::from(body.clone().into_boxed_slice()));
        AnalyzeOutcome::Report { body, cache: "miss" }
    }

    /// Validate one analyze request object into a [`Prepared`] run.
    fn prepare(&self, v: &Json) -> Result<Prepared, (u16, String)> {
        let bad = |message: String| (400, error_obj(400, &message, &[]));
        let Json::Obj(map) = v else {
            return Err(bad(format!("request must be a JSON object, got {}", v.type_name())));
        };
        if let Some(key) = map.keys().find(|k| !ANALYZE_KEYS.contains(&k.as_str())) {
            return Err(bad(format!("unknown key {key:?}")));
        }
        let str_field = |name: &str| -> Result<Option<&str>, (u16, String)> {
            match map.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.as_str())),
                Some(other) => {
                    Err(bad(format!("{name:?} must be a string, got {}", other.type_name())))
                }
            }
        };
        let bool_field = |name: &str| -> Result<bool, (u16, String)> {
            match map.get(name) {
                None | Some(Json::Null) => Ok(false),
                Some(Json::Bool(b)) => Ok(*b),
                Some(other) => {
                    Err(bad(format!("{name:?} must be a boolean, got {}", other.type_name())))
                }
            }
        };
        let uint_field = |name: &str| -> Result<Option<u64>, (u16, String)> {
            match map.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(other) => match other.as_u64() {
                    Some(n) => Ok(Some(n)),
                    None => Err(bad(format!(
                        "{name:?} must be a nonnegative integer, got {}",
                        other.type_name()
                    ))),
                },
            }
        };

        let Some(src) = str_field("program")? else {
            return Err(bad("missing required key \"program\"".to_string()));
        };
        let Some(query_spec) = str_field("query")? else {
            return Err(bad("missing required key \"query\"".to_string()));
        };
        let Some(adn_spec) = str_field("adornment")? else {
            return Err(bad("missing required key \"adornment\"".to_string()));
        };

        let mut options = AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() };
        let norm_tag = match str_field("norm")? {
            None | Some("structural") => {
                options.norm = Norm::StructuralSize;
                "structural"
            }
            Some("list-length") => {
                options.norm = Norm::ListLength;
                "list-length"
            }
            Some(other) => {
                return Err(bad(format!("\"norm\" wants structural|list-length, got {other:?}")));
            }
        };
        let delta_tag = match str_field("delta")? {
            None | Some("paper") => {
                options.delta_mode = DeltaMode::Paper;
                "paper"
            }
            Some("appendix-c") => {
                options.delta_mode = DeltaMode::PathConstraints;
                "appendix-c"
            }
            Some(other) => {
                return Err(bad(format!("\"delta\" wants paper|appendix-c, got {other:?}")));
            }
        };
        if bool_field("no_transform")? {
            options.transform_phases = 0;
        }
        options.lexicographic = bool_field("lexicographic")?;
        if let Some(jobs) = uint_field("jobs")? {
            options.parallelism = jobs as usize;
        }
        if let Some(tier) = uint_field("fm_tier")? {
            options.fm_tier = match FmTier::from_index(tier as usize) {
                Some(t) => t,
                None => return Err(bad(format!("\"fm_tier\" wants 0..=3, got {tier}"))),
            };
        }
        options.fm_cache = !bool_field("no_fm_cache")?;
        let stats = bool_field("stats")?;
        let engine: &'static str = match str_field("engine")? {
            None | Some("theta") => "theta",
            Some("portfolio") => "portfolio",
            Some(other) => match argus_baselines::ENGINE_IDS.iter().find(|id| **id == other) {
                Some(id) => id,
                None => {
                    return Err(bad(format!(
                        "\"engine\" wants theta|sct|bs|uvg|naish|portfolio, got {other:?}"
                    )));
                }
            },
        };

        let (name, arity_str) = query_spec
            .rsplit_once('/')
            .ok_or_else(|| bad(format!("bad query spec {query_spec:?} (want name/arity)")))?;
        let arity: usize = arity_str
            .parse()
            .map_err(|_| bad(format!("bad arity in query spec {query_spec:?}")))?;
        let query = PredKey::new(name, arity);
        let adornment = Adornment::parse(adn_spec)
            .ok_or_else(|| bad(format!("bad adornment {adn_spec:?} (want e.g. \"bf\")")))?;
        if adornment.arity() != arity {
            return Err(bad(format!(
                "adornment arity {} != predicate arity {arity}",
                adornment.arity()
            )));
        }

        let program = match parse_program(src) {
            Ok(p) => p,
            Err(e) => return Err(program_parse_error(src, &e)),
        };
        if !program.idb_predicates().contains(&query) {
            let defined: Vec<PredKey> = program.idb_predicates().into_iter().collect();
            let mut d = Diagnostic::new(
                "L002",
                Severity::Error,
                None,
                format!("query predicate {query} is not defined in the program"),
            );
            if let Some(hit) = argus_diag::passes::best_typo_candidate(&query, &defined) {
                d = d.with_note(format!("did you mean `{hit}`?"));
            }
            let rendered = render_text(&[d], "", "program");
            return Err((
                422,
                error_obj(
                    422,
                    &format!("query predicate {query} is not defined in the program"),
                    &[("diagnostic", json_str(&rendered))],
                ),
            ));
        }

        // The content address: every input that determines the response
        // bytes. `jobs`, `fm_tier`, and `fm_cache` are bytes-identical
        // knobs by construction, but the latter two are cheap to include
        // and make the key self-evidently sound.
        let cache_key = format!(
            "argus/v1\u{1}q={query_spec}\u{1}a={adn_spec}\u{1}norm={norm_tag}\u{1}\
             delta={delta_tag}\u{1}transform={}\u{1}lex={}\u{1}tier={}\u{1}fmcache={}\u{1}\
             engine={engine}\u{1}\n{src}",
            options.transform_phases,
            options.lexicographic as u8,
            options.fm_tier.index(),
            options.fm_cache as u8,
        );

        Ok(Prepared {
            program,
            query,
            adornment,
            share_projections: options.fm_cache,
            options,
            stats,
            engine,
            cache_key,
        })
    }
}

/// Render the inner `{"status":…,"message":…}` error object. `extra`
/// holds pre-rendered JSON values.
fn error_obj(status: u16, message: &str, extra: &[(&str, String)]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{{\"status\":{status},\"message\":{}", json_str(message));
    for (k, v) in extra {
        let _ = write!(s, ",\"{k}\":{v}");
    }
    s.push('}');
    s
}

/// A complete error response with the standard envelope.
fn error_response(status: u16, message: &str, extra: &[(&str, String)]) -> Response {
    Response::json(status, format!("{{\"error\":{}}}\n", error_obj(status, message, extra)))
}

/// Byte offset → 1-based (line, column), flooring to a char boundary.
fn line_col(src: &str, offset: usize) -> (usize, usize, usize) {
    let mut off = offset.min(src.len());
    while off > 0 && !src.is_char_boundary(off) {
        off -= 1;
    }
    let prefix = &src[..off];
    let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = prefix[prefix.rfind('\n').map_or(0, |i| i + 1)..].chars().count() + 1;
    (off, line, col)
}

/// A caret-rendered one-span diagnostic over `src`.
fn caret_diagnostic(code: &'static str, src: &str, offset: usize, message: String) -> String {
    let (off, line, col) = line_col(src, offset);
    let end = (off + 1..=src.len()).find(|&i| src.is_char_boundary(i)).unwrap_or(src.len());
    let d = Diagnostic::new(code, Severity::Error, Some(Span::new(off, end, line, col)), message);
    render_text(&[d], src, "request")
}

/// Decode and parse a request body as JSON, or produce the 400.
fn parse_body_json(body: &[u8]) -> Result<Json, Response> {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(e) => {
            let off = e.valid_up_to();
            // The valid prefix survives lossy decoding unchanged, so `off`
            // is a char boundary in the lossy text too.
            let lossy = String::from_utf8_lossy(body);
            let rendered = caret_diagnostic(
                "S002",
                &lossy,
                off,
                format!("request body is not valid UTF-8 at byte {off}"),
            );
            return Err(error_response(
                400,
                "request body is not valid UTF-8",
                &[("offset", off.to_string()), ("diagnostic", json_str(&rendered))],
            ));
        }
    };
    jsonval::parse(text).map_err(|e| {
        let rendered = caret_diagnostic("S001", text, e.offset, e.message.clone());
        error_response(
            400,
            &format!("malformed JSON request: {}", e.message),
            &[("offset", e.offset.to_string()), ("diagnostic", json_str(&rendered))],
        )
    })
}

/// The 400 for an unparseable program, with the same `L000` caret
/// diagnostic `argus lint` would print.
fn program_parse_error(src: &str, e: &argus_logic::parser::ParseError) -> (u16, String) {
    let index = LineIndex::new(src);
    let line_start = index.line_start(e.line).unwrap_or(src.len());
    let off = src[line_start..]
        .char_indices()
        .nth(e.col.saturating_sub(1))
        .map(|(i, _)| line_start + i)
        .unwrap_or(src.len());
    let d = Diagnostic::new(
        "L000",
        Severity::Error,
        Some(Span::new(off, (off + 1).min(src.len()), e.line, e.col)),
        e.message.clone(),
    );
    let rendered = render_text(&[d], src, "program");
    (
        400,
        error_obj(
            400,
            &format!("program parse error: {}", e.message),
            &[("diagnostic", json_str(&rendered))],
        ),
    )
}

/// Process-wide signal plumbing (`SIGTERM`/`SIGINT` → drain).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Route `SIGTERM` and `SIGINT` to the drain flag.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: the handler only stores to an atomic, which is
        // async-signal-safe; `signal` itself is only called at startup.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }

    /// Has a shutdown signal arrived?
    pub fn received() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    /// No-op off unix.
    pub fn install() {}
    /// Always false off unix.
    pub fn received() -> bool {
        false
    }
}

/// Install the `SIGTERM`/`SIGINT` → graceful-drain handlers. Call once
/// from the CLI before [`Server::run`]; tests skip this and drain via
/// [`ServerState::begin_drain`] instead.
pub fn install_signal_handlers() {
    sig::install();
}

/// A bound listener plus its shared state, ready to run.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    addr: SocketAddr,
}

/// A handle to a server running on a background thread (tests, ci).
pub struct ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The shared state (caches, metrics, drain flag).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Drain and wait for the accept loop and workers to finish.
    pub fn shutdown(self) -> std::io::Result<()> {
        self.state.begin_drain();
        self.thread.join().expect("server thread panicked")
    }
}

impl Server {
    /// Bind the listener configured in `state.options()`.
    pub fn bind(state: Arc<ServerState>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(state.options().addr.as_str())?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, state, addr })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bind and run on a background thread.
    pub fn spawn(state: Arc<ServerState>) -> std::io::Result<ServerHandle> {
        let server = Server::bind(Arc::clone(&state))?;
        let addr = server.local_addr();
        let thread = std::thread::Builder::new()
            .name("argus-serve-accept".to_string())
            .spawn(move || server.run())?;
        Ok(ServerHandle { addr, state, thread })
    }

    /// Accept connections until a drain is requested (signal, shutdown
    /// endpoint, or [`ServerState::begin_drain`]), then let in-flight
    /// connections finish and join the workers.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let jobs = if self.state.options().jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.state.options().jobs
        };
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(self.state.options().queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(jobs);
        for i in 0..jobs {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("argus-serve-{i}"))
                    .spawn(move || worker_loop(&state, &rx))?,
            );
        }

        loop {
            if self.state.draining() || sig::received() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => reject_or_enqueue(&self.state, &tx, stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        self.state.begin_drain();
        drop(tx); // workers exit once the queue drains
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Queue an accepted connection, or answer 503 inline when full.
fn reject_or_enqueue(state: &ServerState, tx: &SyncSender<TcpStream>, stream: TcpStream) {
    match tx.try_send(stream) {
        Ok(()) => {}
        Err(TrySendError::Full(mut stream)) => {
            state.metrics.queue_rejections.fetch_add(1, Ordering::Relaxed);
            state.metrics.count_status(503);
            let resp = error_response(503, "accept queue full; retry with backoff", &[]).closing();
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = write_response(&mut stream, &resp);
        }
        Err(TrySendError::Disconnected(_)) => {}
    }
}

fn worker_loop(state: &ServerState, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let next = { rx.lock().expect("accept queue lock poisoned").recv() };
        let Ok(mut stream) = next else { return };
        let _ = stream.set_nodelay(true);
        // The OS-level timeout is only the poll quantum; `read_request`
        // enforces the real deadline across polls.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        serve_connection(state, &mut stream);
    }
}

/// Serve one (possibly keep-alive) connection to completion.
fn serve_connection(state: &ServerState, stream: &mut TcpStream) {
    let limits = state.options().limits;
    loop {
        if state.draining() {
            return;
        }
        match read_request(stream, &limits) {
            Ok(req) => {
                let mut resp = state.handle(&req);
                if state.draining() || !req.keep_alive {
                    resp.close = true;
                }
                if write_response(stream, &resp).is_err() || resp.close {
                    return;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::Timeout { partial: false }) => return,
            Err(ReadError::Timeout { partial: true }) => {
                state.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                state.metrics.count_status(408);
                let resp = error_response(408, "request read timed out (slow peer)", &[]).closing();
                let _ = write_response(stream, &resp);
                return;
            }
            Err(ReadError::TooLarge { limit, declared }) => {
                state.metrics.count_status(413);
                let resp = error_response(
                    413,
                    &format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
                    &[("limit", limit.to_string()), ("declared", declared.to_string())],
                )
                .closing();
                let _ = write_response(stream, &resp);
                return;
            }
            Err(ReadError::Malformed(message)) => {
                state.metrics.malformed_requests.fetch_add(1, Ordering::Relaxed);
                state.metrics.count_status(400);
                let resp = error_response(400, &message, &[]).closing();
                let _ = write_response(stream, &resp);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn state() -> ServerState {
        ServerState::new(ServeOptions::default())
    }

    const APPEND: &str = "append([], Y, Y).\nappend([H|T], Y, [H|Z]) :- append(T, Y, Z).\n";

    fn analyze_body(program: &str) -> String {
        format!(
            "{{\"program\":{},\"query\":\"append/3\",\"adornment\":\"bff\"}}",
            json_str(program)
        )
    }

    #[test]
    fn analyze_matches_cli_json_and_caches() {
        let s = state();
        let req = post("/v1/analyze", &analyze_body(APPEND));
        let first = s.handle(&req);
        assert_eq!(first.status, 200);
        let expected = format!(
            "{}\n",
            argus_core::analyze_source(APPEND, "append/3", "bff").unwrap().to_json()
        );
        assert_eq!(String::from_utf8(first.body).unwrap(), expected);
        assert_eq!(
            first
                .extra_headers
                .iter()
                .find(|(n, _)| *n == "x-argus-cache")
                .map(|(_, v)| v.as_str()),
            Some("miss")
        );
        let second = s.handle(&req);
        assert_eq!(String::from_utf8(second.body).unwrap(), expected);
        assert_eq!(
            second
                .extra_headers
                .iter()
                .find(|(n, _)| *n == "x-argus-cache")
                .map(|(_, v)| v.as_str()),
            Some("hit")
        );
        assert_eq!(s.reports().hits(), 1);
    }

    #[test]
    fn unknown_key_is_rejected() {
        let s = state();
        let resp = s.handle(&post(
            "/v1/analyze",
            "{\"program\":\"p.\",\"query\":\"p/0\",\"adornment\":\"\",\"bogus\":1}",
        ));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8(resp.body).unwrap().contains("unknown key \\\"bogus\\\""));
    }

    #[test]
    fn malformed_json_gets_caret_diagnostic() {
        let s = state();
        let resp = s.handle(&post("/v1/analyze", "{\"program\": }"));
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"diagnostic\""), "{body}");
        assert!(body.contains("S001"), "{body}");
    }

    #[test]
    fn undefined_query_predicate_is_422() {
        let s = state();
        let body = format!(
            "{{\"program\":{},\"query\":\"appendd/3\",\"adornment\":\"bff\"}}",
            json_str(APPEND)
        );
        let resp = s.handle(&post("/v1/analyze", &body));
        assert_eq!(resp.status, 422);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("appendd/3"), "{text}");
        assert!(text.contains("did you mean"), "{text}");
    }

    #[test]
    fn batch_mixes_successes_and_failures() {
        let s = state();
        let body = format!(
            "{{\"items\":[{},{{\"program\":\"p(\",\"query\":\"p/0\",\"adornment\":\"\"}}]}}",
            analyze_body(APPEND)
        );
        let resp = s.handle(&post("/v1/batch", &body));
        assert_eq!(resp.status, 200);
        let v = jsonval::parse(std::str::from_utf8(&resp.body).unwrap().trim_end()).unwrap();
        let results = v.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("status").and_then(Json::as_u64), Some(200));
        assert!(results[0].get("report").is_some());
        assert_eq!(results[1].get("status").and_then(Json::as_u64), Some(400));
    }

    #[test]
    fn lint_renders_diag_json() {
        let s = state();
        let resp = s.handle(&post("/v1/lint", "{\"program\":\"p(X) :- q(X).\"}"));
        assert_eq!(resp.status, 200);
        let v = jsonval::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(v.get("diagnostics").is_some());
    }

    #[test]
    fn metrics_and_healthz_respond() {
        let s = state();
        assert_eq!(s.handle(&get("/healthz")).status, 200);
        let resp = s.handle(&get("/metrics"));
        assert_eq!(resp.status, 200);
        let v = jsonval::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(crate::metrics::METRICS_SCHEMA));
    }

    #[test]
    fn unknown_route_and_method() {
        let s = state();
        assert_eq!(s.handle(&get("/nope")).status, 404);
        assert_eq!(s.handle(&get("/v1/analyze")).status, 405);
        assert_eq!(s.handle(&post("/healthz", "")).status, 405);
    }

    #[test]
    fn infer_returns_conditions_and_caches() {
        let s = state();
        let body = format!("{{\"program\":{}}}", json_str(APPEND));
        let first = s.handle(&post("/v1/infer", &body));
        assert_eq!(first.status, 200);
        let text = String::from_utf8(first.body).unwrap();
        assert!(text.contains("argus-infer/v1"), "{text}");
        assert!(text.contains("\"disjuncts\":[[1],[3]]"), "{text}");
        let second = s.handle(&post("/v1/infer", &body));
        assert_eq!(
            second
                .extra_headers
                .iter()
                .find(|(n, _)| *n == "x-argus-cache")
                .map(|(_, v)| v.as_str()),
            Some("hit")
        );
        assert_eq!(s.conditions().hits(), 1);
        assert_eq!(String::from_utf8(second.body).unwrap(), text);
    }

    #[test]
    fn infer_primes_the_analyze_cache() {
        let s = state();
        let body = format!("{{\"program\":{}}}", json_str(APPEND));
        assert_eq!(s.handle(&post("/v1/infer", &body)).status, 200);
        assert!(s.reports().entries() > 0, "inference probes primed nothing");
        // A default-options analyze covered by a probe is answered from
        // the primed cache, byte-identical to a fresh CLI run.
        let req = post(
            "/v1/analyze",
            &format!(
                "{{\"program\":{},\"query\":\"append/3\",\"adornment\":\"bff\"}}",
                json_str(APPEND)
            ),
        );
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.extra_headers.iter().find(|(n, _)| *n == "x-argus-cache").map(|(_, v)| v.as_str()),
            Some("hit")
        );
        let expected = format!(
            "{}\n",
            argus_core::analyze_source(APPEND, "append/3", "bff").unwrap().to_json()
        );
        assert_eq!(String::from_utf8(resp.body).unwrap(), expected);
    }

    #[test]
    fn infer_rejects_unknown_predicates_and_keys() {
        let s = state();
        let body = format!("{{\"program\":{},\"predicates\":[\"appendd/3\"]}}", json_str(APPEND));
        let resp = s.handle(&post("/v1/infer", &body));
        assert_eq!(resp.status, 422);
        assert!(String::from_utf8(resp.body).unwrap().contains("did you mean"), "typo hint");
        let resp = s.handle(&post("/v1/infer", "{\"program\":\"p.\",\"bogus\":1}"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn scc_memo_survives_program_edits() {
        let s = state();
        assert_eq!(s.handle(&post("/v1/analyze", &analyze_body(APPEND))).status, 200);
        // An edit that adds an unrelated predicate: the append SCC is
        // outside the dirty cone and must be answered from the memo,
        // with the body byte-identical to a fresh server's.
        let edited = format!("{APPEND}len([], z).\nlen([_|T], s(N)) :- len(T, N).\n");
        let resp = s.handle(&post("/v1/analyze", &analyze_body(&edited)));
        assert_eq!(resp.status, 200);
        assert!(s.scc_cache().hits() > 0, "append SCC did not hit the memo after the edit");
        let fresh = state().handle(&post("/v1/analyze", &analyze_body(&edited)));
        assert_eq!(resp.body, fresh.body, "memoized body differs from a cold server");
    }

    #[test]
    fn stats_request_bypasses_report_cache() {
        let s = state();
        let body = format!(
            "{{\"program\":{},\"query\":\"append/3\",\"adornment\":\"bff\",\"stats\":true}}",
            json_str(APPEND)
        );
        let resp = s.handle(&post("/v1/analyze", &body));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"run_stats\""));
        assert_eq!(s.reports().entries(), 0);
    }
}
