//! The LP-duality step (paper §4).
//!
//! For one rule × recursive-subgoal pair with Eq. (1) data
//! `x = a + Aα, y = b + Bα, 0 = c + Cα, x,y,α ≥ 0`, the paper asks for
//! `θ ≥ 0, β ≥ 0` such that every feasible point satisfies
//! `θᵀx ≥ βᵀy + δᵢⱼ`. Writing the check as the LP *minimize θᵀx − βᵀy*
//! and dualizing, the key observation is that `θ` and `β` appear linearly
//! in the dual constraints, so they can be promoted to variables. Because
//! `a, A, b, B ≥ 0`, the dual variables `u, v` are eliminated in closed
//! form (`u = θ`, `v = −β`), leaving the paper's Eq. (9):
//!
//! ```text
//! Cᵀw + Aᵀθ − Bᵀβ ≥ 0          (one row per α variable)
//! cᵀw + aᵀθ − bᵀβ ≥ δᵢⱼ        (the value row)
//! θ ≥ 0, β ≥ 0, w free
//! ```
//!
//! [`eq9_system`] builds exactly this; [`project_pair`] then eliminates the
//! undistinguished `w` by Fourier–Motzkin, leaving constraints over the
//! distinguished θ/β variables only — the form the per-SCC feasibility test
//! consumes.

use crate::pairs::{ProjectionCache, ProjectionEntry, ProjectionKey, RuleSubgoalSystem};
use crate::theta::ThetaSpace;
use argus_linear::fm::{self, FmConfig, FmResult, FmStats, FmTier};
use argus_linear::{simplex, Constraint, ConstraintSystem, IntRow, LinExpr, Rat, Rel, Var};
use std::collections::{BTreeMap, BTreeSet};

/// How the `δᵢⱼ` decrement enters the value row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaTerm {
    /// A fixed rational constant (Section 6.1 operation).
    Constant(i64),
    /// A symbolic variable (Appendix C operation), by LP variable id.
    Variable(Var),
}

/// Build the Eq. (9) system for `pair`. Variables: `w` gets fresh indices
/// from `w_base` (they are free/unrestricted); θ and β indices come from
/// `space`. Returns the system and the list of `w` variable ids used.
pub fn eq9_system(
    pair: &RuleSubgoalSystem,
    space: &ThetaSpace,
    w_base: Var,
    delta: DeltaTerm,
) -> (ConstraintSystem, Vec<Var>) {
    let theta = space.vars(&pair.head_pred);
    let beta = space.vars(&pair.sub_pred);
    assert_eq!(theta.len(), pair.x_rows.len(), "theta arity mismatch");
    assert_eq!(beta.len(), pair.y_rows.len(), "beta arity mismatch");

    let w_vars: Vec<Var> = (0..pair.c_rows.len()).map(|k| w_base + k).collect();
    let mut sys = ConstraintSystem::new();

    // One row per α variable t: Σ_k C[k][t]·w_k + Σ_i A[i][t]·θ_i
    //                           − Σ_j B[j][t]·β_j ≥ 0.
    for t in 0..pair.alpha_count {
        let mut row = LinExpr::zero();
        for (k, c_row) in pair.c_rows.iter().enumerate() {
            let coeff = c_row.coeff(t);
            if !coeff.is_zero() {
                row.add_term(w_vars[k], coeff);
            }
        }
        for (i, x_row) in pair.x_rows.iter().enumerate() {
            let coeff = x_row.coeff(t);
            if !coeff.is_zero() {
                row.add_term(theta[i], coeff);
            }
        }
        for (j, y_row) in pair.y_rows.iter().enumerate() {
            let coeff = y_row.coeff(t);
            if !coeff.is_zero() {
                row.add_term(beta[j], -coeff);
            }
        }
        if row.is_zero() {
            continue; // the paper's all-zero rows (e.g. variable L in Ex. 4.1)
        }
        // row ≥ 0  ⇔  -row ≤ 0.
        sys.push(Constraint { expr: -row, rel: Rel::Le });
    }

    // Value row: cᵀw + aᵀθ − bᵀβ ≥ δ.
    let mut value = LinExpr::zero();
    for (k, c_row) in pair.c_rows.iter().enumerate() {
        let cst = c_row.constant_term().clone();
        if !cst.is_zero() {
            value.add_term(w_vars[k], cst);
        }
    }
    for (i, x_row) in pair.x_rows.iter().enumerate() {
        let cst = x_row.constant_term().clone();
        if !cst.is_zero() {
            value.add_term(theta[i], cst);
        }
    }
    for (j, y_row) in pair.y_rows.iter().enumerate() {
        let cst = y_row.constant_term().clone();
        if !cst.is_zero() {
            value.add_term(beta[j], -cst);
        }
    }
    match delta {
        DeltaTerm::Constant(d) => {
            // value ≥ d  ⇔  d − value ≤ 0.
            let mut e = -value;
            e.add_constant(&Rat::from_int(d));
            sys.push(Constraint { expr: e, rel: Rel::Le });
        }
        DeltaTerm::Variable(dv) => {
            // value ≥ δ  ⇔  δ − value ≤ 0.
            let mut e = -value;
            e.add_term(dv, Rat::one());
            sys.push(Constraint { expr: e, rel: Rel::Le });
        }
    }

    (sys, w_vars)
}

/// FM configuration for the dual-projection path: the requested redundancy
/// tier under the path's historical 2000-row cap.
pub fn dual_fm_config(tier: FmTier) -> FmConfig {
    FmConfig { tier, max_rows: 2000, ..FmConfig::default() }
}

/// Eliminate the `w` variables of a pair's Eq. (9) system by Fourier–
/// Motzkin, leaving constraints over θ/β (and a δ variable, if symbolic).
/// Returns `None` if elimination discovers the system is unsatisfiable for
/// *every* θ (which would mean this pair admits no linear decrease at all).
pub fn project_pair(sys: &ConstraintSystem, w_vars: &[Var]) -> Option<ConstraintSystem> {
    let mut stats = FmStats::default();
    project_pair_with(sys, w_vars, &dual_fm_config(FmTier::default()), None, &mut stats)
}

/// [`project_pair`] with an explicit FM configuration, an optional shared
/// projection cache, and FM counters accumulated into `stats`.
///
/// The projection is computed in *canonically renamed* space (the system's
/// variables mapped monotonically to `0..k`) and renamed back. The rename
/// is order-preserving, so the result is identical to projecting directly —
/// but structurally identical pair systems that differ only in variable
/// numbering now share one cache entry, and cache on/off cannot change any
/// output byte.
///
/// The output is normalized so every tier produces the same bytes: an
/// infeasible projection returns `None` at every tier (tier 0 surfaces the
/// contradiction as a derived constant row, higher tiers may not), and
/// surviving rows pass through a greedy LP minimization that removes every
/// implied row, converging to the polyhedron's irredundant description.
pub fn project_pair_with(
    sys: &ConstraintSystem,
    w_vars: &[Var],
    cfg: &FmConfig,
    cache: Option<&ProjectionCache>,
    stats: &mut FmStats,
) -> Option<ConstraintSystem> {
    // Monotone rename: sorted distinct variables → 0..k.
    let mut all_vars: BTreeSet<Var> = sys.vars();
    all_vars.extend(w_vars.iter().copied());
    let fwd: BTreeMap<Var, Var> = all_vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let back: BTreeMap<Var, Var> = fwd.iter().map(|(&v, &i)| (i, v)).collect();
    let renamed = ConstraintSystem::from_constraints(
        sys.constraints().iter().map(|c| c.rename(&fwd)).collect(),
    );
    let eliminate: Vec<Var> = w_vars
        .iter()
        .filter_map(|v| fwd.get(v))
        .copied()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    let compute = || -> (ProjectionEntry, bool) {
        let keep: BTreeSet<Var> =
            renamed.vars().into_iter().filter(|v| !eliminate.contains(v)).collect();
        let mut st = FmStats::default();
        let mut timed_out = false;
        let result = match fm::project_onto_with(&renamed, &keep, cfg, &mut st) {
            Err(blowup) => {
                // Blowup: treat as "no linear decrease found". A deadline
                // bailout is remembered so the entry stays out of the cache.
                timed_out = blowup.timed_out;
                None
            }
            Ok(FmResult::Infeasible) => None,
            Ok(FmResult::Projected(out)) => {
                let out = out.dedup();
                // Higher tiers can drop the redundant rows whose combination
                // would have exposed a contradiction as a constant row; a
                // simplex check restores one verdict for every tier.
                if simplex::feasible_point(&out, &BTreeSet::new()).is_none() {
                    None
                } else {
                    Some(minimize_rows(out))
                }
            }
        };
        (ProjectionEntry { result, stats: st }, timed_out)
    };

    let entry = match cache {
        None => compute().0,
        Some(cache) => {
            let key = ProjectionKey {
                rows: renamed.constraints().iter().map(IntRow::of_constraint).collect(),
                eliminate: eliminate.clone(),
                tier: cfg.tier.index() as u8,
                max_rows: cfg.max_rows,
            };
            match cache.get(&key) {
                Some(entry) => entry,
                None => {
                    let (entry, timed_out) = compute();
                    if timed_out {
                        // A deadline abort is a property of this run's wall
                        // clock, not of the key: publishing it would poison
                        // every later (possibly unhurried) analysis that
                        // shares the cache.
                        entry
                    } else {
                        cache.publish(key, entry)
                    }
                }
            }
        }
    };
    stats.merge(&entry.stats);
    entry.result.map(|out| {
        ConstraintSystem::from_constraints(
            out.constraints().iter().map(|c| c.rename(&back)).collect(),
        )
    })
}

/// Greedily remove every row implied by the remaining ones (variables all
/// free: the `θ ≥ 0` rows are added downstream and must not silently
/// strengthen the displayed system). A single ascending pass over the
/// canonically ordered rows leaves an irredundant description, which for
/// the full-dimensional systems this path produces is unique — the final
/// normalization step that makes every redundancy tier emit identical
/// bytes.
fn minimize_rows(sys: ConstraintSystem) -> ConstraintSystem {
    let rows = sys.constraints();
    if rows.len() <= 1 {
        return sys;
    }
    let mut kept: Vec<bool> = vec![true; rows.len()];
    let nonneg = BTreeSet::new();
    for i in 0..rows.len() {
        kept[i] = false;
        let others = ConstraintSystem::from_constraints(
            rows.iter().enumerate().filter(|(j, _)| kept[*j]).map(|(_, c)| c.clone()).collect(),
        );
        if !simplex::is_implied(&others, &nonneg, &rows[i]) {
            kept[i] = true;
        }
    }
    ConstraintSystem::from_constraints(
        rows.iter().enumerate().filter(|(j, _)| kept[*j]).map(|(_, c)| c.clone()).collect(),
    )
    .dedup()
}

/// The θ-feasibility problem for a whole SCC: the conjunction of all pairs'
/// projected systems plus `θ ≥ 0` for every distinguished variable.
pub fn feasibility_system(
    projected: &[ConstraintSystem],
    space: &ThetaSpace,
) -> (ConstraintSystem, BTreeSet<Var>) {
    let mut sys = ConstraintSystem::new();
    for p in projected {
        sys.extend(p);
    }
    let mut nonneg = BTreeSet::new();
    for v in space.all_vars() {
        nonneg.insert(v);
    }
    (sys.dedup(), nonneg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::build_pair;
    use crate::theta::ThetaSpace;
    use argus_logic::modes::{infer_modes, Adornment};
    use argus_logic::parser::parse_program;
    use argus_logic::PredKey;
    use argus_sizerel::{infer_size_relations, InferOptions};

    /// Reproduce the paper's Example 4.1 end to end: the perm pair reduces
    /// (after identifying θ = β and δ = 1) to `2θ ≥ 1`.
    #[test]
    fn example_4_1_reduction() {
        let program = parse_program(
            "perm([], []).\n\
             perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
             append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        )
        .unwrap();
        let root = PredKey::new("perm", 2);
        let modes = infer_modes(&program, &root, Adornment::parse("bf").unwrap());
        let rels = infer_size_relations(&program, &InferOptions::default());
        let pair = build_pair(&program.rules[1], 1, 2, &modes, &rels);

        let mut space = ThetaSpace::new();
        space.add_pred(&root, 1); // one bound argument
        let (sys, w) = eq9_system(&pair, &space, space.len(), DeltaTerm::Constant(1));
        assert_eq!(w.len(), 2, "two c rows => two w duals");
        let reduced = project_pair(&sys, &w).expect("projection succeeds");

        // Head pred == subgoal pred, so theta and beta are the same var.
        // The reduced system must be satisfiable with theta = 1/2 and
        // unsatisfiable with theta = 1/4 (since 2θ ≥ 1 is required).
        let theta = space.vars(&root)[0];
        let at = |v: i64, d: i64| {
            let mut pt = std::collections::BTreeMap::new();
            pt.insert(theta, Rat::new(v.into(), d.into()));
            pt
        };
        assert!(reduced.holds_at(&at(1, 2)), "theta = 1/2 must satisfy:\n{reduced}");
        assert!(reduced.holds_at(&at(1, 1)), "theta = 1 must satisfy");
        assert!(!reduced.holds_at(&at(1, 4)), "theta = 1/4 must violate 2θ ≥ 1:\n{reduced}");
        assert!(!reduced.holds_at(&at(0, 1)), "theta = 0 must violate");
    }

    /// Example 5.1: both recursive merge rules reduce to constraints whose
    /// combined solution set is θ₁ = θ₂ ≥ 1/2.
    #[test]
    fn example_5_1_reduction() {
        let program = parse_program(
            "merge([], Ys, Ys).\n\
             merge(Xs, [], Xs).\n\
             merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
             merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
        )
        .unwrap();
        let root = PredKey::new("merge", 3);
        let modes = infer_modes(&program, &root, Adornment::parse("bbf").unwrap());
        let rels = infer_size_relations(&program, &InferOptions::default());

        let mut space = ThetaSpace::new();
        space.add_pred(&root, 2); // two bound arguments
        let mut systems = Vec::new();
        for (ri, si) in [(2usize, 1usize), (3, 1)] {
            let pair = build_pair(&program.rules[ri], ri, si, &modes, &rels);
            let (sys, w) = eq9_system(&pair, &space, space.len(), DeltaTerm::Constant(1));
            assert!(w.is_empty(), "no c rows in merge");
            systems.push(project_pair(&sys, &w).unwrap());
        }
        let (all, _) = feasibility_system(&systems, &space);
        let t = space.vars(&root);
        let at = |a: Rat, b: Rat| {
            let mut pt = std::collections::BTreeMap::new();
            pt.insert(t[0], a);
            pt.insert(t[1], b);
            pt
        };
        let half = Rat::new(1.into(), 2.into());
        // θ1 = θ2 = 1/2 works (the paper's solution).
        assert!(all.holds_at(&at(half.clone(), half.clone())), "{all}");
        // Unequal thetas violate θ1 = θ2.
        assert!(!all.holds_at(&at(Rat::one(), half.clone())));
        // Too-small equal thetas violate 2θ ≥ 1 … i.e. θ1 + θ2 ≥ 1.
        let quarter = Rat::new(1.into(), 4.into());
        assert!(!all.holds_at(&at(quarter.clone(), quarter)));
    }

    #[test]
    fn zero_rows_are_dropped() {
        // A pair whose alpha variable appears nowhere yields no row for it.
        let program = parse_program("p([_|Xs], Y) :- p(Xs, Y).").unwrap();
        let root = PredKey::new("p", 2);
        let modes = infer_modes(&program, &root, Adornment::parse("bf").unwrap());
        let rels = infer_size_relations(&program, &InferOptions::default());
        let pair = build_pair(&program.rules[0], 0, 0, &modes, &rels);
        let mut space = ThetaSpace::new();
        space.add_pred(&root, 1);
        let (sys, w) = eq9_system(&pair, &space, space.len(), DeltaTerm::Constant(1));
        let reduced = project_pair(&sys, &w).unwrap();
        // x = 2 + A + Xs, y = Xs: rows A: θ ≥ 0 (dropped? no: θ ≥ 0 is a
        // real row), Xs: θ − β ≥ 0, value: 2θ ≥ 1. Satisfiable at 1/2.
        let theta = space.vars(&root)[0];
        let mut pt = std::collections::BTreeMap::new();
        pt.insert(theta, Rat::new(1.into(), 2.into()));
        assert!(reduced.holds_at(&pt), "{reduced}");
    }
}
