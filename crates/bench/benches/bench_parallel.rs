//! E7f — the level-scheduled parallel SCC pipeline.
//!
//! Analyzes one wide multi-SCC program (many independent SCCs per
//! topological level — the workload the scheduler exists for) and one deep
//! chain (one SCC per level — worst case, measures scheduler overhead) at
//! `--jobs 1` vs one worker per core. Results are byte-identical by
//! construction; only the wall clock should move.
//! Plain fixed-iteration harness; pass `--smoke` for CI-sized systems.

use argus_bench::suites::{parallel_suite, Scale};
use argus_bench::timing::render_line;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") { Scale::Smoke } else { Scale::Full };
    for s in parallel_suite(scale) {
        println!("{}", render_line(&s));
    }
}
