//! Diagnostic → Language Server Protocol conversion.
//!
//! The LSP server (`crates/lsp`) publishes the exact diagnostics the
//! CLI renders — same codes, same messages, same byte spans — but the
//! protocol speaks 0-based UTF-16 positions where [`crate::Diagnostic`]
//! carries byte offsets. This module owns that translation:
//!
//! * [`lsp_severity`] maps [`Severity`] onto the protocol's
//!   `DiagnosticSeverity` numbers (Error → 1, Warning → 2, Note → 3 /
//!   Information);
//! * [`lsp_range`] converts a byte [`Span`] to a `(line, character)`
//!   range via [`LineIndex::utf16_position`];
//! * [`render_lsp_diagnostic`] / [`render_lsp_diagnostics`] emit the
//!   protocol's `Diagnostic` JSON objects, with notes surfaced as
//!   `relatedInformation` and the raw byte offsets preserved under
//!   `data` (`{"start":…,"end":…}`) so tooling can assert
//!   byte-equivalence against `argus lint --json` without re-deriving
//!   offsets from UTF-16 positions.
//!
//! Spanless diagnostics (e.g. L003 on a predicate with no parsed rule)
//! get the protocol's conventional zero range and no `data` field.

use crate::render::json_str;
use crate::{Diagnostic, Severity};
use argus_logic::span::{LineIndex, Span};

/// The LSP `DiagnosticSeverity` value for `s`: Error → 1, Warning → 2,
/// Note → 3 (`Information`).
pub fn lsp_severity(s: Severity) -> u32 {
    match s {
        Severity::Error => 1,
        Severity::Warning => 2,
        Severity::Note => 3,
    }
}

/// The 0-based UTF-16 `((start line, start char), (end line, end char))`
/// range of `span` in `src`.
pub fn lsp_range(index: &LineIndex, src: &str, span: &Span) -> ((usize, usize), (usize, usize)) {
    (index.utf16_position(src, span.start), index.utf16_position(src, span.end))
}

fn range_json(range: ((usize, usize), (usize, usize))) -> String {
    let ((sl, sc), (el, ec)) = range;
    format!(
        "{{\"start\":{{\"line\":{sl},\"character\":{sc}}},\
         \"end\":{{\"line\":{el},\"character\":{ec}}}}}"
    )
}

/// Render one diagnostic as an LSP `Diagnostic` JSON object. `uri` is the
/// document the diagnostic belongs to (needed because
/// `relatedInformation` entries carry full locations).
pub fn render_lsp_diagnostic(d: &Diagnostic, src: &str, index: &LineIndex, uri: &str) -> String {
    let range = match &d.span {
        Some(span) => lsp_range(index, src, span),
        None => ((0, 0), (0, 0)),
    };
    let mut fields = vec![
        format!("\"range\":{}", range_json(range)),
        format!("\"severity\":{}", lsp_severity(d.severity)),
        format!("\"code\":{}", json_str(d.code)),
        "\"source\":\"argus\"".to_string(),
        format!("\"message\":{}", json_str(&d.message)),
    ];
    if !d.notes.is_empty() {
        let related: Vec<String> = d
            .notes
            .iter()
            .map(|note| {
                format!(
                    "{{\"location\":{{\"uri\":{},\"range\":{}}},\"message\":{}}}",
                    json_str(uri),
                    range_json(range),
                    json_str(note)
                )
            })
            .collect();
        fields.push(format!("\"relatedInformation\":[{}]", related.join(",")));
    }
    if let Some(span) = &d.span {
        fields.push(format!("\"data\":{{\"start\":{},\"end\":{}}}", span.start, span.end));
    }
    format!("{{{}}}", fields.join(","))
}

/// Render `diags` as the LSP `diagnostics` JSON array for a
/// `textDocument/publishDiagnostics` notification over `src`.
pub fn render_lsp_diagnostics(diags: &[Diagnostic], src: &str, uri: &str) -> String {
    let index = LineIndex::new(src);
    let items: Vec<String> =
        diags.iter().map(|d| render_lsp_diagnostic(d, src, &index, uri)).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, LintOptions};

    #[test]
    fn severities_map_to_lsp_numbers() {
        assert_eq!(lsp_severity(Severity::Error), 1);
        assert_eq!(lsp_severity(Severity::Warning), 2);
        assert_eq!(lsp_severity(Severity::Note), 3);
    }

    #[test]
    fn ranges_are_utf16_code_units() {
        // The emoji is 4 bytes / 2 UTF-16 units, so the undefined call
        // after it lands at character 4 + 2 = not its char count.
        let src = "p(X) :- q('😀', X).\n";
        let diags = lint_source(src, &LintOptions::default());
        let d = diags.iter().find(|d| d.code == "L002").expect("L002");
        let json = render_lsp_diagnostics(std::slice::from_ref(d), src, "file:///demo.pl");
        // `q(...)` starts at byte 8, char 9, UTF-16 unit 8 on line 0.
        assert!(json.contains("\"start\":{\"line\":0,\"character\":8}"), "{json}");
        // Byte offsets survive verbatim under data.
        let span = d.span.unwrap();
        assert!(
            json.contains(&format!("\"data\":{{\"start\":{},\"end\":{}}}", span.start, span.end)),
            "{json}"
        );
    }

    #[test]
    fn notes_become_related_information() {
        let src = "p(X, X).\np(X, Y) :- p(X, Y).\nmain(X) :- p(X, _).\n";
        let diags = lint_source(src, &LintOptions::default());
        let noted = diags.iter().find(|d| !d.notes.is_empty()).expect("a diagnostic with notes");
        let json = render_lsp_diagnostic(noted, src, &LineIndex::new(src), "file:///demo.pl");
        assert!(json.contains("\"relatedInformation\":["), "{json}");
        assert!(json.contains("\"uri\":\"file:///demo.pl\""), "{json}");
        assert!(json.contains(&json_str(&noted.notes[0])), "{json}");
    }

    #[test]
    fn spanless_diagnostics_get_zero_range_and_no_data() {
        let d = Diagnostic::new("L003", Severity::Warning, None, "orphan");
        let json = render_lsp_diagnostic(&d, "", &LineIndex::new(""), "file:///x.pl");
        assert!(
            json.contains(
                "\"range\":{\"start\":{\"line\":0,\"character\":0},\
             \"end\":{\"line\":0,\"character\":0}}"
            ),
            "{json}"
        );
        assert!(!json.contains("\"data\""), "{json}");
    }
}
