//! `argus` — command-line front end for the termination analyzer.
//!
//! ```text
//! argus analyze <file.pl> <name/arity> <adornment> [--norm list-length]
//!               [--delta appendix-c] [--no-transform] [--certify]
//!               [--lexicographic] [--json] [--jobs N] [--stats]
//!               [--fm-tier 0..3] [--no-fm-cache] [--engine ID]
//!               [--incremental] [--cache-dir DIR]
//! argus watch   <file.pl> <name/arity> <adornment> [--cache-dir DIR]
//!               [--jobs N] [--poll-ms N] [--iterations N]
//! argus infer   <file.pl> [<name/arity> ...] [--json] [--jobs N]
//!               [--max-arity N] [--no-propagate] [--certify] [--engine ID]
//! argus infer   --corpus [--certify]
//! argus lint    <file.pl> [--query <name/arity> --mode <adornment>] [--json]
//! argus compare <file.pl> <name/arity> <adornment>
//! argus run     <file.pl> '<goal>'  [--steps N]
//! argus corpus  [<entry-name>]
//! argus fuzz    [--seed S] [--cases N] [--jobs J] [--json] [--max-steps N]
//!               [--shrink-budget N] [--no-metamorphic] [--no-theta-search]
//!               [--negation] [--infer] [--portfolio] [--incremental]
//!               [--repro-dir DIR] [--serve ADDR]
//! argus serve   [--addr HOST:PORT] [--jobs N] [--cache-mb N]
//!               [--deadline-ms N] [--cache-dir DIR]
//! argus lsp     [--jobs N] [--debounce-ms N] [--cache-dir DIR]
//!               [--query <name/arity> --mode <adornment>]
//! ```
//!
//! `--incremental` memoizes per-SCC results so repeated analyses of a
//! lightly-edited file recompute only the dirty SCC cone; `--cache-dir`
//! persists the memo on disk (and implies `--incremental`). `argus watch`
//! re-analyzes the file whenever it changes and prints only the changed
//! report lines.
//!
//! Exit codes: 0 = proved / clean (or command succeeded), 2 = not proved
//! (or lint produced warnings), 1 = usage/parse/lint error.

use argus::baselines::all_methods;
use argus::interp::sld::{solve, InterpOptions};
use argus::logic::parser::{parse_program, parse_query};
use argus::logic::Norm;
use argus::prelude::*;
use std::io::Write;
use std::process::ExitCode;

/// Print a line to stdout, exiting quietly if the consumer closed the pipe
/// (e.g. `argus corpus | head`).
fn say(line: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout().lock();
    if writeln!(out, "{line}").is_err() {
        std::process::exit(0);
    }
}

macro_rules! say {
    ($($arg:tt)*) => { say(format_args!($($arg)*)) };
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  argus analyze <file.pl> <name/arity> <adornment> \
         [--norm structural|list-length] [--delta paper|appendix-c] \
         [--no-transform] [--certify] [--lexicographic] [--jobs N] \
         [--stats] [--fm-tier 0..3] [--no-fm-cache] \
         [--engine theta|sct|bs|uvg|naish|portfolio] \
         [--incremental] [--cache-dir DIR]\n  \
         argus watch <file.pl> <name/arity> <adornment> [--cache-dir DIR] \
         [--jobs N] [--poll-ms N] [--iterations N]\n  \
         argus infer <file.pl> [<name/arity> ...] [--json] [--jobs N] \
         [--max-arity N] [--no-propagate] [--certify] \
         [--engine theta|sct|bs|uvg|naish|portfolio]\n  \
         argus infer --corpus [--certify]\n  \
         argus lint <file.pl> [--query <name/arity> --mode <adornment>] [--json]\n  \
         argus compare <file.pl> <name/arity> <adornment>\n  \
         argus run <file.pl> '<goal>' [--steps N]\n  \
         argus corpus [<entry>]\n  \
         argus fuzz [--seed S] [--cases N] [--jobs J] [--json] [--max-steps N] \
         [--shrink-budget N] [--no-metamorphic] [--no-theta-search] [--negation] \
         [--infer] [--portfolio] [--incremental] [--repro-dir DIR] [--serve ADDR]\n  \
         argus serve [--addr HOST:PORT] [--jobs N] [--cache-mb N] [--deadline-ms N] \
         [--cache-dir DIR]\n  \
         argus lsp [--jobs N] [--debounce-ms N] [--cache-dir DIR] \
         [--query <name/arity> --mode <adornment>]"
    );
    ExitCode::FAILURE
}

fn parse_spec(spec: &str) -> Option<PredKey> {
    let (name, arity) = spec.rsplit_once('/')?;
    Some(PredKey::new(name, arity.parse().ok()?))
}

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_program(&src).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("lsp") => cmd_lsp(&args[1..]),
        _ => usage(),
    }
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let mut positional: Vec<&str> = Vec::new();
    let mut options = AnalysisOptions::default();
    let mut certify = false;
    let mut json = false;
    let mut stats = false;
    let mut engine_id = "theta".to_string();
    let mut incremental = false;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-transform" => options.transform_phases = 0,
            "--certify" => certify = true,
            "--lexicographic" => options.lexicographic = true,
            "--json" => json = true,
            "--stats" => stats = true,
            "--no-fm-cache" => options.fm_cache = false,
            "--incremental" => incremental = true,
            "--cache-dir" => {
                i += 1;
                cache_dir = match args.get(i) {
                    Some(v) => Some(std::path::PathBuf::from(v)),
                    None => {
                        eprintln!("--cache-dir wants a directory");
                        return ExitCode::FAILURE;
                    }
                };
                // A persistent cache is only useful incrementally.
                incremental = true;
            }
            "--engine" => {
                i += 1;
                engine_id = match args.get(i) {
                    Some(v) => v.clone(),
                    None => {
                        eprintln!("--engine wants theta|sct|bs|uvg|naish|portfolio");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--fm-tier" => {
                i += 1;
                options.fm_tier =
                    match args.get(i).and_then(|v| v.parse().ok()).and_then(FmTier::from_index) {
                        Some(t) => t,
                        None => {
                            eprintln!("--fm-tier wants a redundancy tier 0..3");
                            return ExitCode::FAILURE;
                        }
                    };
            }
            "--norm" => {
                i += 1;
                options.norm = match args.get(i).map(String::as_str) {
                    Some("structural") => Norm::StructuralSize,
                    Some("list-length") => Norm::ListLength,
                    v => {
                        eprintln!("--norm wants structural|list-length, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--delta" => {
                i += 1;
                options.delta_mode = match args.get(i).map(String::as_str) {
                    Some("paper") => DeltaMode::Paper,
                    Some("appendix-c") => DeltaMode::PathConstraints,
                    v => {
                        eprintln!("--delta wants paper|appendix-c, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--jobs" => {
                i += 1;
                options.parallelism = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs wants a thread count (0 = one per core)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let [path, spec, adn] = positional.as_slice() else { return usage() };

    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(query) = parse_spec(spec) else { return usage() };
    let Some(adornment) = Adornment::parse(adn) else {
        eprintln!("bad adornment {adn:?}");
        return ExitCode::FAILURE;
    };
    if adornment.arity() != query.arity {
        eprintln!("adornment arity mismatch");
        return ExitCode::FAILURE;
    }
    if !program.idb_predicates().contains(&query) {
        // Route the failure through the diagnostics renderer so the error
        // reads like any other lint finding.
        let defined: Vec<PredKey> = program.idb_predicates().into_iter().collect();
        let mut d = Diagnostic::new(
            "L002",
            Severity::Error,
            None,
            format!("query predicate {query} is not defined in {path}"),
        );
        if let Some(hit) = argus::diag::passes::best_typo_candidate(&query, &defined) {
            d = d.with_note(format!("did you mean `{hit}`?"));
        }
        eprint!("{}", argus::diag::render::render_text(&[d], "", path));
        return ExitCode::FAILURE;
    }

    // `--incremental` memoizes per-SCC results; with `--cache-dir` (or a
    // resolvable default cache directory) the memo persists across runs,
    // so only the SCC cone dirtied since the last invocation recomputes.
    let memo = if incremental { Some(open_scc_cache(cache_dir)) } else { None };

    if engine_id != "theta" {
        if certify {
            eprintln!("--certify re-checks theta witnesses; rerun with --engine theta");
            return ExitCode::FAILURE;
        }
        return engine_analyze(
            &program,
            &query,
            adornment,
            &options,
            &engine_id,
            json,
            stats,
            memo.as_ref(),
        );
    }

    let report = argus::core::analyze_with_caches(
        &program,
        &query,
        adornment,
        &options,
        None,
        memo.as_ref(),
    );
    if json {
        println!("{}", report.to_json_with(stats));
    } else {
        println!("{report}");
        if stats {
            print!("{}", report.render_stats());
        }
    }
    if certify && report.verdict == Verdict::Terminates {
        match argus::core::verify_report(&report, options.norm) {
            Ok(n) => println!("certificate: VERIFIED ({n} pair check(s), primal LP)"),
            Err(e) => {
                println!("certificate: REJECTED — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.verdict == Verdict::Terminates {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// Open the per-SCC memo for `--incremental`: the given `--cache-dir`,
/// else the default per-user cache directory, else (no resolvable home)
/// a process-local in-memory memo. The CLI memo is unbounded — a run
/// lives for one analysis, and the disk tier is pruned by content hash,
/// not residency.
fn open_scc_cache(cache_dir: Option<std::path::PathBuf>) -> argus::core::SccCache {
    use argus::core::SccCache;
    match cache_dir.or_else(SccCache::default_disk_dir) {
        Some(dir) => SccCache::with_disk(usize::MAX, dir),
        None => SccCache::unbounded(),
    }
}

/// Resolve an `--engine` value to the engine list (and whether to race).
/// `portfolio` races every registered engine; a single id runs just that
/// engine, un-raced, through the same runner so output shapes match.
fn resolve_engines(engine_id: &str) -> Option<(Vec<Box<dyn argus::core::Engine>>, bool)> {
    use argus::baselines::{engine_by_id, standard_engines};
    if engine_id == "portfolio" {
        Some((standard_engines(), true))
    } else {
        engine_by_id(engine_id).map(|e| (vec![e], false))
    }
}

/// `argus analyze --engine <id>`: run one engine (or the racing
/// portfolio) and render the `argus-engine/v1` report. The default
/// `--engine theta` never reaches here — it keeps the original
/// `TerminationReport` output byte-for-byte.
#[allow(clippy::too_many_arguments)]
fn engine_analyze(
    program: &Program,
    query: &PredKey,
    adornment: Adornment,
    options: &AnalysisOptions,
    engine_id: &str,
    json: bool,
    stats: bool,
    memo: Option<&argus::core::SccCache>,
) -> ExitCode {
    let Some((engines, race)) = resolve_engines(engine_id) else {
        eprintln!("--engine wants theta|sct|bs|uvg|naish|portfolio, got {engine_id:?}");
        return ExitCode::FAILURE;
    };
    let report = argus::core::run_portfolio_with_memo(
        &engines,
        program,
        query,
        &adornment,
        options,
        options.parallelism,
        race,
        memo,
    );
    if json {
        println!("{}", report.to_json(stats));
    } else {
        print!("{report}");
        if stats {
            print!("{}", report.render_stats());
        }
    }
    if report.verdict == Verdict::Terminates {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// `argus watch <file.pl> <name/arity> <adornment>`: re-analyze the file
/// whenever its mtime changes, keeping a per-SCC memo warm across
/// re-analyses so each edit recomputes only its dirty SCC cone. The first
/// report prints in full; every subsequent one prints only the changed
/// lines (`- ` removed, `+ ` added) via [`argus::diag::delta`]. A file
/// that stops parsing reports the error and keeps watching.
fn cmd_watch(args: &[String]) -> ExitCode {
    use argus::core::{analyze_with_caches, SccCache};

    let mut positional: Vec<&str> = Vec::new();
    let mut options = AnalysisOptions::default();
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut poll_ms: u64 = 200;
    let mut iterations: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                i += 1;
                cache_dir = match args.get(i) {
                    Some(v) => Some(std::path::PathBuf::from(v)),
                    None => {
                        eprintln!("--cache-dir wants a directory");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--jobs" => {
                i += 1;
                options.parallelism = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs wants a thread count (0 = one per core)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--poll-ms" => {
                i += 1;
                poll_ms = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("bad --poll-ms value");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--iterations" => {
                i += 1;
                iterations = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("bad --iterations value");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other if other.starts_with("--") => {
                eprintln!("unknown watch flag {other}");
                return ExitCode::FAILURE;
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let [path, spec, adn] = positional.as_slice() else { return usage() };
    let Some(query) = parse_spec(spec) else { return usage() };
    let Some(adornment) = Adornment::parse(adn) else {
        eprintln!("bad adornment {adn:?}");
        return ExitCode::FAILURE;
    };
    if adornment.arity() != query.arity {
        eprintln!("adornment arity mismatch");
        return ExitCode::FAILURE;
    }

    // `--cache-dir` only; no implicit default dir — a watcher's memo is
    // already warm across edits in memory, so disk is opt-in here.
    let memo = match cache_dir {
        Some(dir) => SccCache::with_disk(usize::MAX, dir),
        None => SccCache::unbounded(),
    };

    // Change detection compares mtime AND (length, FNV-1a content hash):
    // mtime alone misses rapid same-second edits on coarse-granularity
    // filesystems, and editors that restore a file byte-for-byte (undo)
    // would re-trigger on mtime alone. The content read here is reused
    // for parsing, so detection costs no extra I/O.
    type WatchSig = (Option<std::time::SystemTime>, Option<(u64, u64)>);
    let mut last_sig: Option<WatchSig> = None;
    let mut last_render: Option<String> = None;
    let mut analyses = 0usize;
    loop {
        let mtime = std::fs::metadata(path).and_then(|m| m.modified()).ok();
        let content = std::fs::read_to_string(path);
        let sig: WatchSig = (
            mtime,
            content.as_ref().ok().map(|s| (s.len() as u64, argus::serve::fnv1a64(s.as_bytes()))),
        );
        let changed = last_render.is_none() || last_sig.as_ref() != Some(&sig);
        if changed {
            last_sig = Some(sig);
            let loaded = match &content {
                Ok(src) => parse_program(src).map_err(|e| e.to_string()),
                Err(e) => Err(format!("cannot read {path}: {e}")),
            };
            match loaded {
                Ok(program) if !program.idb_predicates().contains(&query) => {
                    say!("watch: {query} is not defined in {path} — waiting for edits");
                }
                Ok(program) => {
                    let started = std::time::Instant::now();
                    let report = analyze_with_caches(
                        &program,
                        &query,
                        adornment.clone(),
                        &options,
                        None,
                        Some(&memo),
                    );
                    let elapsed = started.elapsed();
                    let rendered = report.to_string();
                    match &last_render {
                        None => print!("{rendered}"),
                        Some(prev) => {
                            let delta = argus::diag::delta::render_delta(prev, &rendered);
                            if delta.is_empty() {
                                say!("watch: report unchanged");
                            } else {
                                print!("{delta}");
                            }
                        }
                    }
                    let incr = report
                        .incremental
                        .map(|s| format!(", {}/{} SCCs recomputed", s.dirty(), s.total()))
                        .unwrap_or_default();
                    say!("watch: analyzed {path} in {:.1}ms{incr}", elapsed.as_secs_f64() * 1e3);
                    last_render = Some(rendered);
                }
                Err(e) => {
                    // Mid-edit files often fail to parse; report and keep
                    // watching — the next save gets a fresh chance.
                    say!("watch: {e}");
                }
            }
            analyses += 1;
            if iterations.is_some_and(|n| analyses >= n) {
                return ExitCode::SUCCESS;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(1)));
    }
}

fn cmd_infer(args: &[String]) -> ExitCode {
    use argus::core::{check_condition, infer_conditions_for, BackwardsOptions};

    let mut positional: Vec<&str> = Vec::new();
    let mut options = BackwardsOptions::default();
    let mut json = false;
    let mut certify = false;
    let mut corpus_mode = false;
    let mut engine_id = "theta".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--certify" => certify = true,
            "--corpus" => corpus_mode = true,
            "--no-propagate" => options.propagate = false,
            "--engine" => {
                i += 1;
                engine_id = match args.get(i) {
                    Some(v) => v.clone(),
                    None => {
                        eprintln!("--engine wants theta|sct|bs|uvg|naish|portfolio");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--jobs" => {
                i += 1;
                options.analysis.parallelism = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs wants a thread count (0 = one per core)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--max-arity" => {
                i += 1;
                options.max_arity = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("bad --max-arity value");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => positional.push(other),
        }
        i += 1;
    }

    if engine_id != "theta" {
        if corpus_mode {
            eprintln!("--engine is not supported with --corpus (the corpus lane is theta-only)");
            return ExitCode::FAILURE;
        }
        let Some((engines, race)) = resolve_engines(&engine_id) else {
            eprintln!("--engine wants theta|sct|bs|uvg|naish|portfolio, got {engine_id:?}");
            return ExitCode::FAILURE;
        };
        // Every probe of the lattice sweep goes through the selected
        // engine (or the racing portfolio) instead of the θ pipeline.
        // Probes stay sequential — run_portfolio with jobs 1 — because
        // infer's parallelism lives at the predicate level.
        let engines = std::sync::Arc::new(engines);
        options.probe_override =
            Some(argus::core::ProbeHook::new(move |program, pred, adn, opts| {
                argus::core::run_portfolio(&engines, program, pred, adn, opts, 1, race).verdict
            }));
    }

    if corpus_mode {
        return infer_corpus(&options, certify);
    }
    let Some((path, specs)) = positional.split_first() else { return usage() };

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let idb = program.idb_predicates();
    let preds: std::collections::BTreeSet<PredKey> = if specs.is_empty() {
        idb.clone()
    } else {
        let mut set = std::collections::BTreeSet::new();
        for spec in specs {
            let Some(pred) = parse_spec(spec) else {
                eprintln!("bad predicate spec {spec:?} (want name/arity)");
                return ExitCode::FAILURE;
            };
            if !idb.contains(&pred) {
                let defined: Vec<PredKey> = idb.iter().cloned().collect();
                let mut d = Diagnostic::new(
                    "L002",
                    Severity::Error,
                    None,
                    format!("predicate {pred} is not defined in {path}"),
                );
                if let Some(hit) = argus::diag::passes::best_typo_candidate(&pred, &defined) {
                    d = d.with_note(format!("did you mean `{hit}`?"));
                }
                eprint!("{}", argus::diag::render::render_text(&[d], &src, path));
                return ExitCode::FAILURE;
            }
            set.insert(pred);
        }
        set
    };

    let report = infer_conditions_for(&program, &preds, &options);
    if json {
        say!("{}", report.to_json());
    } else {
        let mut carets: Vec<Diagnostic> = Vec::new();
        for cond in &report.conditions {
            if cond.condition.is_true() {
                say!("{}: terminates unconditionally", cond.pred);
            } else if cond.condition.is_false() {
                say!("{}: no terminating instantiation found", cond.pred);
                carets.push(unprovable_diagnostic(&program, &cond.pred));
            } else {
                let capped =
                    if cond.capped { " (arity-capped: only all-bound probed)" } else { "" };
                say!("{}: terminates if {}{capped}", cond.pred, cond.condition);
            }
        }
        say!(
            "inference: {} predicate(s), {} forward analyses, {} pruned{}",
            report.conditions.len(),
            report.analyses,
            report.pruned,
            if report.partial { " (PARTIAL: deadline hit)" } else { "" }
        );
        if !carets.is_empty() {
            print!("{}", argus::diag::render::render_text(&carets, &src, path));
        }
    }
    if certify {
        let mut disjuncts = 0;
        for cond in &report.conditions {
            if let Some(hook) = &options.probe_override {
                // Non-theta engines have no LP certificate to re-check;
                // the strongest re-validation is an independent re-run of
                // the probe on every disjunct.
                let seq = AnalysisOptions { parallelism: 1, ..options.analysis.clone() };
                for adn in cond.disjunct_adornments() {
                    if hook.call(&program, &cond.pred, &adn, &seq) != Verdict::Terminates {
                        eprintln!(
                            "certificate: REJECTED — {} disjunct {adn} not reproducible \
                             under --engine {engine_id}",
                            cond.pred
                        );
                        return ExitCode::FAILURE;
                    }
                    disjuncts += 1;
                }
            } else {
                match check_condition(&program, cond, &options.analysis) {
                    Ok(n) => disjuncts += n,
                    Err(e) => {
                        eprintln!("certificate: REJECTED — {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        say!("certificates: VERIFIED ({disjuncts} disjunct(s) re-checked)");
    }
    if report.conditions.iter().all(|c| !c.condition.is_false()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// A caret diagnostic for a predicate with no provable instantiation,
/// anchored at its first recursive rule (mirrors the L009/L010 spans).
fn unprovable_diagnostic(program: &Program, pred: &PredKey) -> Diagnostic {
    let span = program
        .rules
        .iter()
        .filter(|r| r.head.key() == *pred)
        .filter(|r| r.body.iter().any(|l| l.atom.key() == *pred))
        .find_map(|r| r.head.span.get().or_else(|| r.span.get()));
    Diagnostic::new(
        "L011",
        Severity::Warning,
        span,
        format!("no adornment of {pred} yields a termination proof"),
    )
    .with_note(
        "even the all-bound instantiation was refuted, so no further \
         binding can help (provability is monotone in boundness)",
    )
}

/// `argus infer --corpus [--certify]`: whole-program inference over every
/// corpus entry — the CI smoke lane.
fn infer_corpus(options: &argus::core::BackwardsOptions, certify: bool) -> ExitCode {
    use argus::core::{check_condition, infer_conditions};
    let mut analyses = 0;
    let mut preds = 0;
    let mut disjuncts = 0;
    for entry in argus::corpus::corpus() {
        let program = match entry.program() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: corpus source fails to parse: {e}", entry.name);
                return ExitCode::FAILURE;
            }
        };
        let report = infer_conditions(&program, options);
        for cond in &report.conditions {
            say!("{:24} {:16} {}", entry.name, cond.pred.to_string(), cond.condition);
            if certify {
                match check_condition(&program, cond, &options.analysis) {
                    Ok(n) => disjuncts += n,
                    Err(e) => {
                        eprintln!("{}: certificate REJECTED — {e}", entry.name);
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        analyses += report.analyses;
        preds += report.conditions.len();
    }
    say!("corpus inference: {preds} predicate(s), {analyses} forward analyses");
    if certify {
        say!("certificates: VERIFIED ({disjuncts} disjunct(s) re-checked)");
    }
    ExitCode::SUCCESS
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut positional: Vec<&str> = Vec::new();
    let mut json = false;
    let mut query_spec: Option<&str> = None;
    let mut mode_spec: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--query" => {
                i += 1;
                match args.get(i) {
                    Some(v) => query_spec = Some(v),
                    None => {
                        eprintln!("--query wants <name/arity>");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--mode" => {
                i += 1;
                match args.get(i) {
                    Some(v) => mode_spec = Some(v),
                    None => {
                        eprintln!("--mode wants an adornment like bf");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let [path] = positional.as_slice() else { return usage() };

    let mut options = LintOptions::default();
    match (query_spec, mode_spec) {
        (None, None) => {}
        (Some(q), Some(m)) => match argus::diag::moded::parse_query_spec(q, m) {
            Ok(query) => options.query = Some(query),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("--query and --mode must be given together");
            return ExitCode::FAILURE;
        }
    }

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diags = lint_source(&src, &options);
    if json {
        print!("{}", argus::diag::render::render_json(&diags, path));
    } else {
        print!("{}", argus::diag::render::render_text(&diags, &src, path));
    }
    if argus::diag::has_errors(&diags) {
        ExitCode::FAILURE
    } else if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let [path, spec, adn] = args else { return usage() };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(query) = parse_spec(spec) else { return usage() };
    let Some(adornment) = Adornment::parse(adn) else { return usage() };
    for m in all_methods() {
        let r = m.prove(&program, &query, &adornment);
        println!(
            "{:38} {}",
            m.name(),
            if r.proved { "PROVED".to_string() } else { format!("fails — {}", r.detail) }
        );
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path, goal_src] = positional.as_slice() else { return usage() };
    let mut options = InterpOptions::default();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    for i in 0..argv.len() {
        if argv[i] == "--steps" && i + 1 < argv.len() {
            match argv[i + 1].parse() {
                Ok(n) => options.max_steps = n,
                Err(_) => {
                    eprintln!("bad --steps value");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let goals = match parse_query(goal_src) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let out = solve(&program, &goals, &options);
    match out {
        argus::interp::Outcome::Completed { solutions, steps } => {
            for (i, s) in solutions.iter().enumerate() {
                let bindings: Vec<String> = s.iter().map(|(v, t)| format!("{v} = {t}")).collect();
                println!(
                    "answer {}: {}",
                    i + 1,
                    if bindings.is_empty() { "true".into() } else { bindings.join(", ") }
                );
            }
            println!("{} answer(s), {} steps, search complete", solutions.len(), steps);
            ExitCode::SUCCESS
        }
        argus::interp::Outcome::OutOfBudget { steps, solutions_so_far } => {
            println!("budget exhausted after {steps} steps ({solutions_so_far} answer(s) so far)");
            ExitCode::from(2)
        }
    }
}

fn cmd_corpus(args: &[String]) -> ExitCode {
    match args.first() {
        None => {
            say!("{:24} {:12} {:6} {:10} {}", "name", "query", "mode", "terminates", "description");
            for e in argus::corpus::corpus() {
                say!(
                    "{:24} {:12} {:6} {:10} {}",
                    e.name,
                    e.query,
                    e.adornment,
                    if e.terminates { "yes" } else { "no" },
                    e.description.split_whitespace().collect::<Vec<_>>().join(" ")
                );
            }
            ExitCode::SUCCESS
        }
        Some(name) => match argus::corpus::find(name) {
            Some(e) => {
                println!("% {} ({})", e.name, e.description);
                if let Some(r) = e.paper_ref {
                    println!("% paper: {r}");
                }
                println!("% query: {} mode {}\n", e.query, e.adornment);
                print!("{}", e.source);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("no corpus entry named {name:?}");
                ExitCode::FAILURE
            }
        },
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    use argus::fuzz::{repro_file, run as run_fuzz, FuzzOptions};

    let mut options = FuzzOptions { cases: 200, ..FuzzOptions::default() };
    let mut json = false;
    let mut repro_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let want_value = |args: &[String], i: usize, flag: &str| -> Option<String> {
            match args.get(i + 1) {
                Some(v) => Some(v.clone()),
                None => {
                    eprintln!("{flag} wants a value");
                    None
                }
            }
        };
        match args[i].as_str() {
            "--json" => json = true,
            "--no-metamorphic" => options.metamorphic = false,
            "--no-theta-search" => options.theta_search = false,
            "--negation" => options.gen.negation = true,
            "--infer" => options.infer = true,
            "--portfolio" => options.portfolio = true,
            "--incremental" => options.incremental = true,
            "--seed" => {
                let Some(v) = want_value(args, i, "--seed") else { return ExitCode::FAILURE };
                let Ok(n) = v.parse() else {
                    eprintln!("bad --seed value {v:?}");
                    return ExitCode::FAILURE;
                };
                options.seed = n;
                i += 1;
            }
            "--cases" => {
                let Some(v) = want_value(args, i, "--cases") else { return ExitCode::FAILURE };
                let Ok(n) = v.parse() else {
                    eprintln!("bad --cases value {v:?}");
                    return ExitCode::FAILURE;
                };
                options.cases = n;
                i += 1;
            }
            "--jobs" => {
                let Some(v) = want_value(args, i, "--jobs") else { return ExitCode::FAILURE };
                let Ok(n) = v.parse() else {
                    eprintln!("--jobs wants a thread count (0 = one per core)");
                    return ExitCode::FAILURE;
                };
                options.jobs = n;
                i += 1;
            }
            "--max-steps" => {
                let Some(v) = want_value(args, i, "--max-steps") else { return ExitCode::FAILURE };
                let Ok(n) = v.parse() else {
                    eprintln!("bad --max-steps value {v:?}");
                    return ExitCode::FAILURE;
                };
                options.max_steps = n;
                i += 1;
            }
            "--shrink-budget" => {
                let Some(v) = want_value(args, i, "--shrink-budget") else {
                    return ExitCode::FAILURE;
                };
                let Ok(n) = v.parse() else {
                    eprintln!("bad --shrink-budget value {v:?}");
                    return ExitCode::FAILURE;
                };
                options.shrink_budget = n;
                i += 1;
            }
            "--repro-dir" => {
                let Some(v) = want_value(args, i, "--repro-dir") else { return ExitCode::FAILURE };
                repro_dir = Some(v);
                i += 1;
            }
            "--serve" => {
                let Some(v) = want_value(args, i, "--serve") else { return ExitCode::FAILURE };
                options.serve_addr = Some(v);
                i += 1;
            }
            other => {
                eprintln!("unknown fuzz argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let started = std::time::Instant::now();
    let report = run_fuzz(&options);
    let elapsed = started.elapsed();

    if json {
        say!("{}", report.to_json());
    } else {
        print!("{report}");
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            say!(
                "throughput: {} cases in {:.2}s ({:.0} cases/s)",
                report.cases,
                secs,
                report.cases as f64 / secs
            );
        }
    }

    // Write minimized reproducers where the regression suite replays them.
    if !report.violations.is_empty() {
        let dir = repro_dir.unwrap_or_else(|| "tests/golden/fuzz-repros".to_string());
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for v in &report.violations {
            let path = format!("{dir}/seed{}-{}.pl", v.case_seed, v.kind.label());
            if let Err(e) = std::fs::write(&path, repro_file(v)) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("reproducer written to {path}");
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    use argus::serve::{install_signal_handlers, ServeOptions, Server, ServerState};

    let mut options = ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        let want_value = |args: &[String], i: usize, flag: &str| -> Option<String> {
            match args.get(i + 1) {
                Some(v) => Some(v.clone()),
                None => {
                    eprintln!("{flag} wants a value");
                    None
                }
            }
        };
        match args[i].as_str() {
            "--addr" => {
                let Some(v) = want_value(args, i, "--addr") else { return ExitCode::FAILURE };
                options.addr = v;
                i += 1;
            }
            "--jobs" => {
                let Some(v) = want_value(args, i, "--jobs") else { return ExitCode::FAILURE };
                let Ok(n) = v.parse() else {
                    eprintln!("--jobs wants a thread count (0 = one per core)");
                    return ExitCode::FAILURE;
                };
                options.jobs = n;
                i += 1;
            }
            "--cache-mb" => {
                let Some(v) = want_value(args, i, "--cache-mb") else { return ExitCode::FAILURE };
                let Ok(n) = v.parse() else {
                    eprintln!("bad --cache-mb value {v:?}");
                    return ExitCode::FAILURE;
                };
                options.cache_mb = n;
                i += 1;
            }
            "--deadline-ms" => {
                let Some(v) = want_value(args, i, "--deadline-ms") else {
                    return ExitCode::FAILURE;
                };
                let Ok(n) = v.parse() else {
                    eprintln!("bad --deadline-ms value {v:?}");
                    return ExitCode::FAILURE;
                };
                options.deadline_ms = n;
                i += 1;
            }
            "--cache-dir" => {
                let Some(v) = want_value(args, i, "--cache-dir") else {
                    return ExitCode::FAILURE;
                };
                options.cache_dir = Some(std::path::PathBuf::from(v));
                i += 1;
            }
            other => {
                eprintln!("unknown serve argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let state = std::sync::Arc::new(ServerState::new(options));
    let server = match Server::bind(state) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The startup line scripts parse to learn the real port (`--addr :0`).
    say!("listening on {}", server.local_addr());
    install_signal_handlers();
    match server.run() {
        Ok(()) => {
            say!("drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_lsp(args: &[String]) -> ExitCode {
    let mut options = argus::lsp::LspOptions::default();
    let mut query_spec: Option<&str> = None;
    let mut mode_spec: Option<&str> = None;
    let want_value = |args: &[String], i: usize, flag: &str| -> Option<String> {
        match args.get(i + 1) {
            Some(v) => Some(v.clone()),
            None => {
                eprintln!("{flag} wants a value");
                None
            }
        }
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let Some(v) = want_value(args, i, "--jobs") else { return ExitCode::FAILURE };
                let Ok(n) = v.parse() else {
                    eprintln!("bad --jobs value {v:?}");
                    return ExitCode::FAILURE;
                };
                options.jobs = n;
                i += 1;
            }
            "--debounce-ms" => {
                let Some(v) = want_value(args, i, "--debounce-ms") else {
                    return ExitCode::FAILURE;
                };
                let Ok(n) = v.parse() else {
                    eprintln!("bad --debounce-ms value {v:?}");
                    return ExitCode::FAILURE;
                };
                options.debounce_ms = n;
                i += 1;
            }
            "--cache-dir" => {
                let Some(v) = want_value(args, i, "--cache-dir") else {
                    return ExitCode::FAILURE;
                };
                options.cache_dir = Some(std::path::PathBuf::from(v));
                i += 1;
            }
            "--query" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--query wants <name/arity>");
                    return ExitCode::FAILURE;
                };
                query_spec = Some(v);
                i += 1;
            }
            "--mode" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--mode wants an adornment like bf");
                    return ExitCode::FAILURE;
                };
                mode_spec = Some(v);
                i += 1;
            }
            other => {
                eprintln!("unknown lsp argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    match (query_spec, mode_spec) {
        (None, None) => {}
        (Some(q), Some(m)) => match argus::diag::moded::parse_query_spec(q, m) {
            Ok(query) => options.query = Some(query),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("--query and --mode must be given together");
            return ExitCode::FAILURE;
        }
    }
    let code = argus::lsp::run_server(std::io::stdin(), std::io::stdout().lock(), options);
    ExitCode::from(code.clamp(0, 255) as u8)
}
