//! Line-level deltas between two rendered reports.
//!
//! `argus watch` re-analyzes a file on every change and should print only
//! what *changed*, not the whole report again. The unit of change is a
//! rendered line — each diagnostic, verdict, and certificate row is one
//! line in both the text and JSON renderers, so a line-level multiset
//! diff is exactly a diagnostic-level diff without re-parsing anything.
//!
//! The diff is a multiset comparison, not an LCS: reports are generated
//! (not hand-edited) text, so a line either persists verbatim between
//! runs or it is a genuinely new/retired diagnostic. Removed lines come
//! first (in old-report order, prefixed `- `), then added lines (in
//! new-report order, prefixed `+ `). Identical reports diff to nothing.

use std::collections::HashMap;

/// One changed line between two report renderings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaLine {
    /// Present in the old rendering only.
    Removed(String),
    /// Present in the new rendering only.
    Added(String),
}

impl std::fmt::Display for DeltaLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaLine::Removed(l) => write!(f, "- {l}"),
            DeltaLine::Added(l) => write!(f, "+ {l}"),
        }
    }
}

/// Multiset line diff: every line of `old` not matched by an equal line
/// of `new` is `Removed`, every unmatched line of `new` is `Added`.
/// Duplicate lines are matched one-for-one, so a diagnostic that appears
/// twice and now appears once shows up as exactly one removal.
pub fn changed_lines(old: &str, new: &str) -> Vec<DeltaLine> {
    let mut balance: HashMap<&str, i64> = HashMap::new();
    for line in old.lines() {
        *balance.entry(line).or_insert(0) += 1;
    }
    for line in new.lines() {
        *balance.entry(line).or_insert(0) -= 1;
    }
    let mut out = Vec::new();
    let mut left = balance.clone();
    for line in old.lines() {
        let n = left.get_mut(line).expect("counted above");
        if *n > 0 {
            *n -= 1;
            out.push(DeltaLine::Removed(line.to_string()));
        }
    }
    let mut right = balance;
    for line in new.lines() {
        let n = right.get_mut(line).expect("counted above");
        if *n < 0 {
            *n += 1;
            out.push(DeltaLine::Added(line.to_string()));
        }
    }
    out
}

/// Render a delta as the block `argus watch` prints: one `- `/`+ ` line
/// per change, or nothing at all when the reports are identical.
pub fn render_delta(old: &str, new: &str) -> String {
    let mut s = String::new();
    for line in changed_lines(old, new) {
        s.push_str(&line.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_reports_have_no_delta() {
        let r = "verdict: TERMINATES\ntheta[p/2] = [1, 0]\n";
        assert!(changed_lines(r, r).is_empty());
        assert_eq!(render_delta(r, r), "");
    }

    #[test]
    fn changed_line_is_one_removal_and_one_addition() {
        let old = "verdict: TERMINATES\ntheta[p/2] = [1, 0]\n";
        let new = "verdict: TERMINATES\ntheta[p/2] = [1, 1]\n";
        assert_eq!(
            changed_lines(old, new),
            vec![
                DeltaLine::Removed("theta[p/2] = [1, 0]".to_string()),
                DeltaLine::Added("theta[p/2] = [1, 1]".to_string()),
            ]
        );
        assert_eq!(render_delta(old, new), "- theta[p/2] = [1, 0]\n+ theta[p/2] = [1, 1]\n");
    }

    #[test]
    fn unchanged_shared_lines_never_appear() {
        let old = "a\nb\nc\n";
        let new = "a\nc\nd\n";
        let delta = changed_lines(old, new);
        assert_eq!(
            delta,
            vec![DeltaLine::Removed("b".to_string()), DeltaLine::Added("d".to_string())]
        );
    }

    #[test]
    fn duplicates_match_one_for_one() {
        let old = "warn: x\nwarn: x\n";
        let new = "warn: x\n";
        assert_eq!(changed_lines(old, new), vec![DeltaLine::Removed("warn: x".to_string())]);
        // And the symmetric case.
        assert_eq!(changed_lines(new, old), vec![DeltaLine::Added("warn: x".to_string())]);
    }

    #[test]
    fn empty_old_report_emits_everything_as_added() {
        let new = "verdict: UNKNOWN\n";
        assert_eq!(changed_lines("", new), vec![DeltaLine::Added("verdict: UNKNOWN".to_string())]);
    }
}
