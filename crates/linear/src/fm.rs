//! Fourier–Motzkin elimination with tiered redundancy control.
//!
//! Given a conjunction of linear constraints, eliminate a variable `v` so
//! that the resulting system has exactly the satisfying assignments of the
//! original projected onto the remaining variables. Equalities mentioning
//! `v` are used as substitutions (Gaussian step); otherwise every pair of a
//! lower bound and an upper bound on `v` is combined.
//!
//! This is the engine behind the paper's reduction of the dual system
//! (its Eq. 8) down to constraints on the distinguished θ variables
//! (its Eq. 9), and behind polyhedron projection and convex hull in
//! [`crate::poly`].
//!
//! FM's pairwise products blow up superexponentially without redundancy
//! control, so the kernel works on canonical integer rows
//! ([`crate::canon::IntRow`]) and filters every derived row through a
//! tier ladder ([`FmTier`]):
//!
//! * **tier 0** — exact-duplicate hash dedup (canonical rows are
//!   hash-equal iff structurally equal, so this is one set probe);
//! * **tier 1** — syntactic subsumption: rows with the same coefficient
//!   direction keep only the tightest constant;
//! * **tier 2** (default) — Chernikov/Imbert ancestor counting: a row
//!   derived after `k` eliminations from more than `k + 1` original rows
//!   is redundant and dropped — the classic quasi-redundancy cut;
//! * **tier 3** — budgeted LP implication probes against the round's
//!   untouched rows, sharing one warm-started simplex tableau
//!   ([`crate::simplex::ImplicationProbe`]) across the batch.
//!
//! Every tier preserves the projected solution set exactly (lower tiers
//! just carry more redundant rows), which the proptests in
//! `tests/proptests.rs` check against both simplex and tier 0.

use crate::bigint::BigInt;
use crate::canon::IntRow;
use crate::expr::{ConstraintSystem, Rel, Var};
use crate::rat::Rat;
use crate::simplex::ImplicationProbe;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Outcome of a Fourier–Motzkin elimination round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmResult {
    /// The projected system (the variable no longer occurs).
    Projected(ConstraintSystem),
    /// Elimination exposed a contradictory constant constraint: the input
    /// system is unsatisfiable.
    Infeasible,
}

impl FmResult {
    /// Unwrap the projected system, panicking on infeasibility.
    pub fn expect_projected(self) -> ConstraintSystem {
        match self {
            FmResult::Projected(s) => s,
            FmResult::Infeasible => panic!("system became infeasible during elimination"),
        }
    }

    /// The projected system, or `None` if infeasible.
    pub fn projected(self) -> Option<ConstraintSystem> {
        match self {
            FmResult::Projected(s) => Some(s),
            FmResult::Infeasible => None,
        }
    }
}

/// Row-cap bailout: the elimination materialized more rows than the
/// configured bound allows. Carries the offending count for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmBlowup {
    /// Rows materialized when the cap tripped (the offending count).
    pub rows: usize,
    /// The configured cap.
    pub max_rows: usize,
    /// The bailout was the wall-clock deadline ([`FmConfig::deadline`]),
    /// not the row cap. Deadline bailouts depend on machine speed, so
    /// callers caching projection results must not publish them.
    pub timed_out: bool,
}

impl fmt::Display for FmBlowup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.timed_out {
            write!(f, "fourier-motzkin deadline exceeded at {} rows", self.rows)
        } else {
            write!(
                f,
                "fourier-motzkin blowup: {} rows exceed the cap of {}",
                self.rows, self.max_rows
            )
        }
    }
}

/// Redundancy-elimination tier. Each tier includes all cheaper ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum FmTier {
    /// Exact-duplicate hash dedup only.
    Dedup,
    /// Plus syntactic subsumption (same direction, weaker constant).
    Subsume,
    /// Plus Chernikov/Imbert ancestor-count quasi-redundancy drops.
    #[default]
    Chernikov,
    /// Plus budgeted LP implication probes with a warm-started tableau.
    Lp,
}

impl FmTier {
    /// All tiers, cheapest first.
    pub const ALL: [FmTier; 4] = [FmTier::Dedup, FmTier::Subsume, FmTier::Chernikov, FmTier::Lp];

    /// Tier from its numeric level (0–3).
    pub fn from_index(i: usize) -> Option<FmTier> {
        FmTier::ALL.get(i).copied()
    }

    /// Numeric level (0–3).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Knobs for one elimination/projection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmConfig {
    /// Redundancy tier.
    pub tier: FmTier,
    /// Hard bound on materialized rows; exceeding it aborts with
    /// [`FmBlowup`]. `usize::MAX` disables the cap.
    pub max_rows: usize,
    /// Maximum LP implication probes per projection (tier 3 only).
    pub lp_probe_budget: usize,
    /// Wall-clock deadline: once `Instant::now()` passes it, the run aborts
    /// with [`FmBlowup`] marked `timed_out`. Checked at round boundaries
    /// and periodically inside the pair-combination loop, so a runaway
    /// elimination stops within a bounded amount of extra work. `None`
    /// (the default) disables the check and keeps the engine fully
    /// deterministic.
    pub deadline: Option<std::time::Instant>,
}

impl Default for FmConfig {
    fn default() -> FmConfig {
        FmConfig {
            tier: FmTier::default(),
            max_rows: usize::MAX,
            lp_probe_budget: 256,
            deadline: None,
        }
    }
}

impl FmConfig {
    /// Default tier with a row cap.
    pub fn capped(max_rows: usize) -> FmConfig {
        FmConfig { max_rows, ..FmConfig::default() }
    }

    /// A specific tier, uncapped.
    pub fn tiered(tier: FmTier) -> FmConfig {
        FmConfig { tier, ..FmConfig::default() }
    }
}

/// Counters describing one or more elimination runs. All fields are exact
/// deterministic counts (no wall-clock), so they are stable across worker
/// counts and safe to pin in CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FmStats {
    /// Variable eliminations performed (Gaussian or pairwise).
    pub eliminations: u64,
    /// Eliminations resolved by a Gaussian equality substitution.
    pub gauss_steps: u64,
    /// Rows entering elimination rounds (summed over rounds).
    pub rows_in: u64,
    /// Rows surviving elimination rounds (summed over rounds).
    pub rows_out: u64,
    /// Lower×upper pairs combined.
    pub pairs_combined: u64,
    /// Rows dropped as exact duplicates (tier ≥ 0).
    pub dedup_hits: u64,
    /// Rows dropped or replaced by syntactic subsumption (tier ≥ 1).
    pub subsume_hits: u64,
    /// Rows dropped by the Chernikov/Imbert ancestor bound (tier ≥ 2).
    pub chernikov_drops: u64,
    /// Rows dropped by LP implication probes (tier 3).
    pub lp_drops: u64,
    /// Maximum rows materialized at any point.
    pub peak_rows: u64,
    /// Row combinations completed by the batched `i64` kernel.
    pub small_combs: u64,
    /// Row combinations that promoted to big-integer arithmetic.
    pub big_combs: u64,
}

impl FmStats {
    /// Accumulate another run's counters (sums; `peak_rows` takes the max).
    pub fn merge(&mut self, other: &FmStats) {
        self.eliminations += other.eliminations;
        self.gauss_steps += other.gauss_steps;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.pairs_combined += other.pairs_combined;
        self.dedup_hits += other.dedup_hits;
        self.subsume_hits += other.subsume_hits;
        self.chernikov_drops += other.chernikov_drops;
        self.lp_drops += other.lp_drops;
        self.peak_rows = self.peak_rows.max(other.peak_rows);
        self.small_combs += other.small_combs;
        self.big_combs += other.big_combs;
    }

    /// Total rows removed by redundancy control.
    pub fn total_drops(&self) -> u64 {
        self.dedup_hits + self.subsume_hits + self.chernikov_drops + self.lp_drops
    }
}

// ------------------------------------------------------------------ kernel

/// A derived row with its ancestor set: the indices of the original
/// (post-initial-dedup) rows it was combined from, kept sorted. Imbert's
/// bound says a row with more than `k + 1` ancestors after `k` eliminations
/// is redundant.
#[derive(Debug, Clone)]
struct DRow {
    row: IntRow,
    hist: Vec<u32>,
}

fn union_hist(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// What happened to a row offered to the [`Reducer`].
enum Push {
    /// Appended as a new row.
    Added,
    /// Replaced a weaker row in place (row count unchanged).
    Replaced,
    /// Dropped (trivial or redundant).
    Dropped,
    /// The row is a contradictory constant: the system is infeasible.
    Infeasible,
}

/// The tiered redundancy filter: rows are offered one at a time; the
/// survivor list preserves offer order (subsumption tightens in place).
struct Reducer {
    tier: FmTier,
    /// Chernikov ancestor bound for derived rows (`usize::MAX` disables).
    hist_bound: usize,
    out: Vec<DRow>,
    seen: HashSet<IntRow>,
    /// Subsumption index for `≤` rows: coefficient direction (divided by
    /// the coefficient-only gcd) → (survivor index, constant ÷ gcd). The
    /// rational constant makes `2x ≤ 3` and `x ≤ 2` comparable even though
    /// their canonical integer forms differ.
    le_best: HashMap<Vec<(Var, BigInt)>, (usize, Rat)>,
}

impl Reducer {
    fn new(tier: FmTier, hist_bound: usize) -> Reducer {
        Reducer { tier, hist_bound, out: Vec::new(), seen: HashSet::new(), le_best: HashMap::new() }
    }

    fn push(
        &mut self,
        d: DRow,
        derived: bool,
        stats: &mut FmStats,
        mut probe: Option<(&mut ImplicationProbe, &mut usize)>,
    ) -> Push {
        match d.row.constant_truth() {
            Some(true) => return Push::Dropped,
            Some(false) => return Push::Infeasible,
            None => {}
        }
        if self.seen.contains(&d.row) {
            stats.dedup_hits += 1;
            return Push::Dropped;
        }
        if derived && self.tier >= FmTier::Chernikov && d.hist.len() > self.hist_bound {
            stats.chernikov_drops += 1;
            return Push::Dropped;
        }
        // Subsumption lookup (mutation deferred until the LP probe passes).
        let subsume_key = if self.tier >= FmTier::Subsume && d.row.rel == Rel::Le {
            let mut g = BigInt::zero();
            for (_, k) in &d.row.coeffs {
                g = g.gcd(k);
            }
            let key: Vec<(Var, BigInt)> = d.row.coeffs.iter().map(|(v, k)| (*v, k / &g)).collect();
            let cst = Rat::new(d.row.constant.clone(), g);
            if let Some((_, best)) = self.le_best.get(&key) {
                if cst <= *best {
                    // An existing row is at least as tight: drop this one.
                    stats.subsume_hits += 1;
                    return Push::Dropped;
                }
            }
            Some((key, cst))
        } else {
            None
        };
        if derived && self.tier >= FmTier::Lp && d.row.rel == Rel::Le {
            if let Some((probe, budget)) = probe.as_mut() {
                if **budget > 0 {
                    **budget -= 1;
                    if probe.implies_le(&d.row.to_constraint().expr) {
                        stats.lp_drops += 1;
                        return Push::Dropped;
                    }
                }
            }
        }
        self.seen.insert(d.row.clone());
        if let Some((key, cst)) = subsume_key {
            if let Some(&(idx, _)) = self.le_best.get(&key) {
                // This row is strictly tighter: replace the weaker survivor.
                stats.subsume_hits += 1;
                self.le_best.insert(key, (idx, cst));
                self.out[idx] = d;
                return Push::Replaced;
            }
            self.le_best.insert(key, (self.out.len(), cst));
        }
        self.out.push(d);
        Push::Added
    }
}

enum RoundOut {
    Rows(Vec<DRow>),
    Infeasible,
}

/// Deadline probe shared by the round drivers: `Err` when the configured
/// wall-clock budget is spent. `rows` is the current materialized count,
/// reported in the bailout for diagnostics.
fn check_deadline(cfg: &FmConfig, rows: usize) -> Result<(), FmBlowup> {
    match cfg.deadline {
        Some(d) if std::time::Instant::now() >= d => {
            Err(FmBlowup { rows, max_rows: cfg.max_rows, timed_out: true })
        }
        _ => Ok(()),
    }
}

/// How many lower×upper combinations the pair loop performs between
/// deadline probes. `Instant::now()` is tens of nanoseconds while one
/// combination is microseconds, so even probing this often is noise — the
/// stride just keeps the common (no-deadline) path branch-cheap.
const DEADLINE_STRIDE: u64 = 256;

/// Convert and initially reduce the input system. Every row gets a fresh
/// ancestor id; the Chernikov bound never applies to originals.
fn init_rows(sys: &ConstraintSystem, cfg: &FmConfig, stats: &mut FmStats) -> RoundOut {
    let mut red = Reducer::new(cfg.tier, usize::MAX);
    for (i, c) in sys.constraints().iter().enumerate() {
        let d = DRow { row: IntRow::of_constraint(c), hist: vec![i as u32] };
        if let Push::Infeasible = red.push(d, false, stats, None) {
            return RoundOut::Infeasible;
        }
    }
    RoundOut::Rows(red.out)
}

/// One elimination round for `v` over `rows`. `steps_done` is the number of
/// variables already eliminated (sets the Imbert ancestor bound);
/// `lp_budget` is decremented per tier-3 probe.
fn eliminate_round(
    rows: Vec<DRow>,
    v: Var,
    steps_done: usize,
    cfg: &FmConfig,
    stats: &mut FmStats,
    lp_budget: &mut usize,
) -> Result<RoundOut, FmBlowup> {
    stats.eliminations += 1;
    stats.rows_in += rows.len() as u64;
    check_deadline(cfg, rows.len())?;
    let hist_bound = steps_done.saturating_add(2);

    // Gaussian step: the first equality mentioning v substitutes it away.
    let pivot_idx = rows.iter().position(|d| d.row.rel == Rel::Eq && d.row.coeff(v).is_some());
    if let Some(pi) = pivot_idx {
        stats.gauss_steps += 1;
        let pivot = rows[pi].clone();
        let ce = pivot.row.coeff(v).expect("pivot coefficient").clone();
        let p = ce.abs();
        let mut red = Reducer::new(cfg.tier, hist_bound);
        for (j, d) in rows.into_iter().enumerate() {
            if j == pi {
                continue;
            }
            let Some(cr) = d.row.coeff(v) else {
                if let Push::Infeasible = red.push(d, false, stats, None) {
                    return Ok(RoundOut::Infeasible);
                }
                continue;
            };
            // r' = |ce|·r − sign(ce)·cr·e: v cancels, `≤` direction kept.
            let q = if ce.is_positive() { -cr } else { cr.clone() };
            let (row, small) = d.row.linear_comb_counted(&p, &pivot.row, &q, v);
            if small {
                stats.small_combs += 1;
            } else {
                stats.big_combs += 1;
            }
            let hist = union_hist(&d.hist, &pivot.hist);
            match red.push(DRow { row, hist }, true, stats, None) {
                Push::Infeasible => return Ok(RoundOut::Infeasible),
                Push::Added if red.out.len() > cfg.max_rows => {
                    return Err(FmBlowup {
                        rows: red.out.len(),
                        max_rows: cfg.max_rows,
                        timed_out: false,
                    });
                }
                _ => {}
            }
        }
        stats.rows_out += red.out.len() as u64;
        return Ok(RoundOut::Rows(red.out));
    }

    // Pure inequality elimination. A row (a·v + rest ≤ 0) with a > 0 is an
    // upper bound on v; with a < 0 a lower bound.
    let mut uppers: Vec<(BigInt, DRow)> = Vec::new();
    let mut lowers: Vec<(BigInt, DRow)> = Vec::new();
    let mut red = Reducer::new(cfg.tier, hist_bound);
    for d in rows {
        let Some(a) = d.row.coeff(v) else {
            if let Push::Infeasible = red.push(d, false, stats, None) {
                return Ok(RoundOut::Infeasible);
            }
            continue;
        };
        debug_assert_ne!(d.row.rel, Rel::Eq, "equalities mentioning v take the Gaussian step");
        let a = a.clone();
        if a.is_positive() {
            uppers.push((a, d));
        } else {
            lowers.push((a, d));
        }
    }

    // Tier 3: probe derived rows against the untouched rows with one
    // warm-started tableau (phase 1 solved once, re-priced per row).
    let mut probe = if cfg.tier >= FmTier::Lp
        && *lp_budget > 0
        && !red.out.is_empty()
        && !lowers.is_empty()
        && !uppers.is_empty()
    {
        let mut kept_sys = ConstraintSystem::new();
        for d in &red.out {
            kept_sys.push(d.row.to_constraint());
        }
        Some(ImplicationProbe::new(&kept_sys, &BTreeSet::new()))
    } else {
        None
    };

    // Combine each (lower, upper) pair: from b·v + rl ≤ 0 (b < 0) and
    // a·v + ru ≤ 0 (a > 0), the positive combination a·L + (−b)·U
    // cancels v, giving a·rl − b·ru ≤ 0 — the same direction the rational
    // bound comparison −rl/b ≤ −ru/a yields after canonicalization.
    for (b, lo) in &lowers {
        let nb = -b;
        for (a, up) in &uppers {
            stats.pairs_combined += 1;
            if cfg.deadline.is_some() && stats.pairs_combined.is_multiple_of(DEADLINE_STRIDE) {
                check_deadline(cfg, red.out.len())?;
            }
            let (row, small) = lo.row.linear_comb_counted(a, &up.row, &nb, v);
            if small {
                stats.small_combs += 1;
            } else {
                stats.big_combs += 1;
            }
            let hist = union_hist(&lo.hist, &up.hist);
            let res = red.push(
                DRow { row, hist },
                true,
                stats,
                probe.as_mut().map(|p| (p, &mut *lp_budget)),
            );
            match res {
                Push::Infeasible => return Ok(RoundOut::Infeasible),
                Push::Added if red.out.len() > cfg.max_rows => {
                    return Err(FmBlowup {
                        rows: red.out.len(),
                        max_rows: cfg.max_rows,
                        timed_out: false,
                    });
                }
                _ => {}
            }
        }
    }
    stats.rows_out += red.out.len() as u64;
    Ok(RoundOut::Rows(red.out))
}

/// Render surviving rows back to a [`ConstraintSystem`]: equalities first
/// in derivation order, then inequalities sorted by canonical form — the
/// same shape [`ConstraintSystem::dedup`] produces.
fn rows_to_system(rows: Vec<DRow>) -> ConstraintSystem {
    let mut eqs: Vec<IntRow> = Vec::new();
    let mut les: Vec<IntRow> = Vec::new();
    for d in rows {
        match d.row.rel {
            Rel::Eq => eqs.push(d.row),
            Rel::Le => les.push(d.row),
        }
    }
    les.sort_by(|x, y| x.coeffs.cmp(&y.coeffs).then_with(|| x.constant.cmp(&y.constant)));
    let mut out = ConstraintSystem::new();
    for r in eqs.iter().chain(les.iter()) {
        out.push(r.to_constraint());
    }
    out
}

// ------------------------------------------------------------------ driver

/// Eliminate a single variable from `sys` by Fourier–Motzkin.
///
/// The result mentions every variable of `sys` except `v` and is satisfiable
/// by exactly the projections of satisfying points of `sys`. Trivially true
/// rows are dropped; a trivially false row yields [`FmResult::Infeasible`].
pub fn eliminate(sys: &ConstraintSystem, v: Var) -> FmResult {
    let mut stats = FmStats::default();
    eliminate_with(sys, v, &FmConfig::default(), &mut stats)
        .expect("uncapped elimination cannot overflow")
}

/// Like [`eliminate`] but bails out with [`FmBlowup`] when more than
/// `max_rows` rows are materialized — a true row-count bound that also
/// covers the Gaussian substitution step.
pub fn eliminate_capped(
    sys: &ConstraintSystem,
    v: Var,
    max_rows: usize,
) -> Result<FmResult, FmBlowup> {
    let mut stats = FmStats::default();
    eliminate_with(sys, v, &FmConfig::capped(max_rows), &mut stats)
}

/// [`eliminate`] with explicit configuration and counters.
pub fn eliminate_with(
    sys: &ConstraintSystem,
    v: Var,
    cfg: &FmConfig,
    stats: &mut FmStats,
) -> Result<FmResult, FmBlowup> {
    let rows = match init_rows(sys, cfg, stats) {
        RoundOut::Infeasible => return Ok(FmResult::Infeasible),
        RoundOut::Rows(rows) => rows,
    };
    if rows.len() > cfg.max_rows {
        return Err(FmBlowup { rows: rows.len(), max_rows: cfg.max_rows, timed_out: false });
    }
    stats.peak_rows = stats.peak_rows.max(rows.len() as u64);
    let mut lp_budget = cfg.lp_probe_budget;
    match eliminate_round(rows, v, 0, cfg, stats, &mut lp_budget)? {
        RoundOut::Infeasible => Ok(FmResult::Infeasible),
        RoundOut::Rows(rows) => {
            stats.peak_rows = stats.peak_rows.max(rows.len() as u64);
            Ok(FmResult::Projected(rows_to_system(rows)))
        }
    }
}

/// Eliminate all variables in `vars` from `sys`, in the same greedy
/// fewest-products order [`project_onto`] uses (not the iteration order of
/// `vars` — the ordering heuristic is what keeps intermediate row counts
/// down, so every elimination path shares it).
pub fn eliminate_all(sys: &ConstraintSystem, vars: impl IntoIterator<Item = Var>) -> FmResult {
    let goners: BTreeSet<Var> = vars.into_iter().collect();
    let keep: BTreeSet<Var> = sys.vars().into_iter().filter(|v| !goners.contains(v)).collect();
    project_onto(sys, &keep)
}

/// Project `sys` onto `keep`: eliminate every variable not in `keep`.
/// Variables are eliminated in a greedy order that minimizes the product of
/// positive and negative occurrence counts at each step (a standard
/// heuristic that curbs FM's row blowup).
pub fn project_onto(sys: &ConstraintSystem, keep: &BTreeSet<Var>) -> FmResult {
    let mut stats = FmStats::default();
    project_onto_with(sys, keep, &FmConfig::default(), &mut stats)
        .expect("uncapped projection cannot overflow")
}

/// Like [`project_onto`] but gives up (returning [`FmBlowup`]) if any
/// intermediate system exceeds `max_rows` rows. Callers use this to bound
/// FM's worst-case doubly-exponential blowup and fall back to a sound
/// over-approximation.
pub fn project_onto_capped(
    sys: &ConstraintSystem,
    keep: &BTreeSet<Var>,
    max_rows: usize,
) -> Result<FmResult, FmBlowup> {
    let mut stats = FmStats::default();
    project_onto_with(sys, keep, &FmConfig::capped(max_rows), &mut stats)
}

/// [`project_onto`] with explicit configuration and counters.
pub fn project_onto_with(
    sys: &ConstraintSystem,
    keep: &BTreeSet<Var>,
    cfg: &FmConfig,
    stats: &mut FmStats,
) -> Result<FmResult, FmBlowup> {
    let mut rows = match init_rows(sys, cfg, stats) {
        RoundOut::Infeasible => return Ok(FmResult::Infeasible),
        RoundOut::Rows(rows) => rows,
    };
    let mut steps = 0usize;
    let mut lp_budget = cfg.lp_probe_budget;
    loop {
        stats.peak_rows = stats.peak_rows.max(rows.len() as u64);
        if rows.len() > cfg.max_rows {
            return Err(FmBlowup { rows: rows.len(), max_rows: cfg.max_rows, timed_out: false });
        }
        let mut to_go: BTreeSet<Var> = BTreeSet::new();
        for d in &rows {
            for (v, _) in &d.row.coeffs {
                if !keep.contains(v) {
                    to_go.insert(*v);
                }
            }
        }
        if to_go.is_empty() {
            return Ok(FmResult::Projected(rows_to_system(rows)));
        }
        // Pick the variable whose elimination creates the fewest new rows.
        let best = to_go
            .into_iter()
            .min_by_key(|&v| {
                let mut pos = 0usize;
                let mut neg = 0usize;
                let mut has_eq = false;
                for d in &rows {
                    let Some(a) = d.row.coeff(v) else {
                        continue;
                    };
                    if d.row.rel == Rel::Eq {
                        has_eq = true;
                    } else if a.is_positive() {
                        pos += 1;
                    } else {
                        neg += 1;
                    }
                }
                if has_eq {
                    0 // Gaussian elimination is always cheapest.
                } else {
                    pos * neg + 1
                }
            })
            .expect("nonempty");
        rows = match eliminate_round(rows, best, steps, cfg, stats, &mut lp_budget)? {
            RoundOut::Infeasible => return Ok(FmResult::Infeasible),
            RoundOut::Rows(next) => next,
        };
        steps += 1;
    }
}

/// Decide satisfiability of `sys` (over the rationals, all variables free)
/// purely with Fourier–Motzkin. Intended for small systems and as a test
/// oracle for the simplex solver. Uses the same greedy variable ordering
/// as [`project_onto`].
pub fn is_satisfiable_fm(sys: &ConstraintSystem) -> bool {
    match project_onto(sys, &BTreeSet::new()) {
        FmResult::Infeasible => false,
        FmResult::Projected(rest) => rest.simplify_trivial().is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Constraint, LinExpr};

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    fn le(e: LinExpr, bound: i64) -> Constraint {
        Constraint::le(e, LinExpr::constant(r(bound, 1)))
    }

    #[test]
    fn box_projection() {
        // 0 <= x <= 1, 0 <= y <= 1, x + y <= 3/2; eliminate y.
        let x = 0;
        let y = 1;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::zero()));
        sys.push(le(LinExpr::var(x), 1));
        sys.push(Constraint::ge(LinExpr::var(y), LinExpr::zero()));
        sys.push(le(LinExpr::var(y), 1));
        sys.push(Constraint::le(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(3, 2))));
        let out = eliminate(&sys, y).expect_projected();
        // Projection is 0 <= x <= 1 (x + y <= 3/2 is subsumed for x <= 1).
        let mut p = std::collections::BTreeMap::new();
        p.insert(x, r(1, 1));
        assert!(out.holds_at(&p));
        p.insert(x, r(0, 1));
        assert!(out.holds_at(&p));
        p.insert(x, r(2, 1));
        assert!(!out.holds_at(&p));
        assert!(!out.vars().contains(&y));
    }

    #[test]
    fn gaussian_step_for_equalities() {
        // x = y + 1, x <= 3 => after eliminating x: y <= 2.
        let x = 0;
        let y = 1;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(LinExpr::var(x), &LinExpr::var(y) + &LinExpr::constant(r(1, 1))));
        sys.push(le(LinExpr::var(x), 3));
        let out = eliminate(&sys, x).expect_projected();
        let mut p = std::collections::BTreeMap::new();
        p.insert(y, r(2, 1));
        assert!(out.holds_at(&p));
        p.insert(y, r(5, 2));
        assert!(!out.holds_at(&p));
    }

    #[test]
    fn detects_infeasibility() {
        // x >= 2 and x <= 1.
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::constant(r(2, 1))));
        sys.push(le(LinExpr::var(x), 1));
        assert_eq!(eliminate(&sys, x), FmResult::Infeasible);
        assert!(!is_satisfiable_fm(&sys));
    }

    #[test]
    fn unconstrained_var_elimination_drops_rows() {
        // x free with only a lower bound: eliminating x keeps nothing
        // involving x, but unrelated constraints survive.
        let x = 0;
        let y = 1;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::var(y)));
        sys.push(le(LinExpr::var(y), 7));
        let out = eliminate(&sys, x).expect_projected();
        assert_eq!(out.len(), 1);
        assert!(!out.vars().contains(&x));
    }

    #[test]
    fn project_onto_keeps_requested_vars() {
        // x <= y, y <= z, project onto {x, z} => x <= z.
        let (x, y, z) = (0, 1, 2);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::var(y)));
        sys.push(Constraint::le(LinExpr::var(y), LinExpr::var(z)));
        let keep: BTreeSet<Var> = [x, z].into_iter().collect();
        let out = project_onto(&sys, &keep).expect_projected();
        let mut p = std::collections::BTreeMap::new();
        p.insert(x, r(1, 1));
        p.insert(z, r(2, 1));
        assert!(out.holds_at(&p));
        p.insert(z, r(0, 1));
        assert!(!out.holds_at(&p));
    }

    #[test]
    fn satisfiable_system_with_equalities() {
        // x + y = 1, x >= 0, y >= 0 is satisfiable.
        let (x, y) = (0, 1);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::nonneg(x));
        sys.push(Constraint::nonneg(y));
        assert!(is_satisfiable_fm(&sys));
        // Adding x + y = 2 makes it unsatisfiable.
        let mut bad = sys.clone();
        bad.push(Constraint::eq(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(2, 1))));
        assert!(!is_satisfiable_fm(&bad));
    }

    #[test]
    fn paper_perm_reduction_shape() {
        // A miniature of the paper's Example 4.1 final step: the system
        //   2*theta >= delta, theta >= 0, with delta = 1
        // is satisfiable (theta = 1/2).
        let theta = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::term(theta, r(2, 1)), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::nonneg(theta));
        assert!(is_satisfiable_fm(&sys));
    }

    /// A dense random-ish system for tier-equivalence checks.
    fn dense_system(seed: u64, nvars: usize, nrows: usize) -> ConstraintSystem {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut sys = ConstraintSystem::new();
        for _ in 0..nrows {
            let mut e = LinExpr::zero();
            for v in 0..nvars {
                let k = (next() % 7) as i64 - 3;
                if k != 0 {
                    e.add_term(v, r(k, 1));
                }
            }
            e.add_constant(&r((next() % 11) as i64 - 5, 1));
            sys.push(Constraint { expr: e, rel: Rel::Le });
        }
        // A couple of nonnegativity rows so the system is usually feasible.
        for v in 0..nvars.min(2) {
            sys.push(Constraint::nonneg(v));
        }
        sys
    }

    #[test]
    fn tiers_agree_on_satisfiability() {
        // Projection preserves satisfiability, so every tier's output must
        // be simplex-feasible exactly when the input is. (Syntactic row
        // sets may differ across tiers; the feasible set may not.)
        for seed in 0..20u64 {
            let sys = dense_system(seed, 4, 7);
            let truth = crate::simplex::feasible_point(&sys, &BTreeSet::new()).is_some();
            let keep: BTreeSet<Var> = [0usize].into_iter().collect();
            for tier in FmTier::ALL {
                let mut stats = FmStats::default();
                let out = project_onto_with(&sys, &keep, &FmConfig::tiered(tier), &mut stats)
                    .expect("uncapped");
                let sat = match out {
                    FmResult::Infeasible => false,
                    FmResult::Projected(rest) => {
                        crate::simplex::feasible_point(&rest, &BTreeSet::new()).is_some()
                    }
                };
                assert_eq!(sat, truth, "tier {tier:?} broke satisfiability on seed {seed}");
                // With nothing kept, FM is a complete decision procedure at
                // every tier.
                let all = project_onto_with(
                    &sys,
                    &BTreeSet::new(),
                    &FmConfig::tiered(tier),
                    &mut FmStats::default(),
                )
                .expect("uncapped");
                let decided = match all {
                    FmResult::Infeasible => false,
                    FmResult::Projected(rest) => rest.simplify_trivial().is_some(),
                };
                assert_eq!(decided, truth, "tier {tier:?} misdecided seed {seed}");
            }
        }
    }

    #[test]
    fn higher_tiers_never_grow_the_row_count() {
        for seed in 0..10u64 {
            let sys = dense_system(seed, 5, 9);
            let keep: BTreeSet<Var> = [0usize, 1].into_iter().collect();
            let mut peaks = Vec::new();
            for tier in FmTier::ALL {
                let mut stats = FmStats::default();
                let _ = project_onto_with(&sys, &keep, &FmConfig::tiered(tier), &mut stats)
                    .expect("uncapped");
                peaks.push(stats.peak_rows);
            }
            assert!(
                peaks.windows(2).all(|w| w[0] >= w[1]),
                "peak rows increased with tier on seed {seed}: {peaks:?}"
            );
        }
    }

    #[test]
    fn capped_elimination_reports_offending_count() {
        let sys = dense_system(3, 5, 12);
        let keep: BTreeSet<Var> = BTreeSet::new();
        match project_onto_capped(&sys, &keep, 4) {
            Err(blowup) => {
                assert!(blowup.rows > 4, "offending count must exceed the cap: {blowup}");
                assert_eq!(blowup.max_rows, 4);
            }
            Ok(_) => panic!("a 12-row dense system cannot project under a 4-row cap"),
        }
    }

    #[test]
    fn gaussian_step_respects_the_cap() {
        // Many inequalities hanging off one equality: the substitution step
        // itself must honor the row bound.
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(LinExpr::var(0), LinExpr::var(1)));
        for i in 0..10 {
            sys.push(le(&LinExpr::var(0) + &LinExpr::term(2 + i, r(1, 1)), i as i64));
        }
        match eliminate_capped(&sys, 0, 3) {
            Err(blowup) => assert!(blowup.rows > 3),
            Ok(_) => panic!("10 substituted rows cannot fit a 3-row cap"),
        }
    }

    #[test]
    fn stats_count_reductions() {
        // Duplicate rows must register as dedup hits.
        let mut sys = ConstraintSystem::new();
        sys.push(le(&LinExpr::var(0) + &LinExpr::var(1), 1));
        sys.push(le(&LinExpr::var(0) + &LinExpr::var(1), 1));
        sys.push(le(
            &(&LinExpr::var(0) + &LinExpr::var(0)) + &(&LinExpr::var(1) + &LinExpr::var(1)),
            2,
        ));
        let mut stats = FmStats::default();
        let keep: BTreeSet<Var> = [0usize, 1].into_iter().collect();
        let _ = project_onto_with(&sys, &keep, &FmConfig::default(), &mut stats).unwrap();
        assert!(stats.dedup_hits >= 2, "scaled and exact duplicates dedup: {stats:?}");
    }
}
