//! Term-size norms.
//!
//! The paper fixes *structural term size* (§2.2) as its measure, while
//! noting that earlier work used others — Ullman–Van Gelder's "length of
//! right spine" "corresponds to length for lists, but is less natural for
//! binary trees" (§1.1). The whole LP-duality machinery is agnostic to the
//! choice as long as the measure is a linear polynomial in the sizes of a
//! term's variables with nonnegative coefficients. This module makes the
//! norm a parameter:
//!
//! * [`Norm::StructuralSize`] — the paper's measure: number of edges, i.e.
//!   the sum of the arities of the function symbols;
//! * [`Norm::ListLength`] — length of the right spine: `|v| = v`,
//!   `|c| = 0`, `|f(t1…tn)| = 1 + |tn|` — the [UVG88] measure;
//! * [`Norm::Depth`] — *not* expressible as a linear polynomial with the
//!   required shape (`depth(f(s,t)) = 1 + max(…)` is not linear), so it is
//!   deliberately absent; see the module tests for the demonstration.
//!
//! Different norms prove different programs. A recursion that drops one
//! element per call but may *grow* the elements is provable under
//! `ListLength` (element sizes don't count) and not under
//! `StructuralSize`; a recursion into the left branch of a tree is
//! invisible to `ListLength` (the right spine is unchanged).

use crate::arena::{TermArena, TermId};
use crate::term::{SizePolynomial, Term};

/// A linear term-size measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Norm {
    /// The paper's structural term size (§2.2): the number of edges in the
    /// term tree; for lists, `2·length + Σ element sizes`.
    #[default]
    StructuralSize,
    /// Length of the right spine ([UVG88]): for lists, exactly the list
    /// length, ignoring element sizes.
    ListLength,
}

impl Norm {
    /// The size polynomial of `t` under this norm: a constant plus
    /// nonnegative integer coefficients over `t`'s variables.
    pub fn polynomial(self, t: &Term) -> SizePolynomial {
        match self {
            Norm::StructuralSize => t.size_polynomial(),
            Norm::ListLength => {
                let mut p = SizePolynomial::default();
                right_spine(t, &mut p);
                p
            }
        }
    }

    /// The size polynomial of an arena-interned term: same result as
    /// [`Norm::polynomial`] on the tree form, computed on flat indices
    /// without touching the pointer tree (the fixpoint hot path).
    pub fn polynomial_id(self, arena: &TermArena, id: TermId) -> SizePolynomial {
        let mut p = SizePolynomial::default();
        match self {
            Norm::StructuralSize => arena.size_polynomial_into(id, &mut p),
            Norm::ListLength => arena.right_spine_into(id, &mut p),
        }
        p
    }

    /// Size of a ground term under this norm, if ground.
    pub fn ground_size(self, t: &Term) -> Option<u64> {
        let p = self.polynomial(t);
        if p.coeffs.is_empty() {
            Some(p.constant)
        } else {
            None
        }
    }

    /// Short name for display.
    pub fn name(self) -> &'static str {
        match self {
            Norm::StructuralSize => "structural-size",
            Norm::ListLength => "list-length",
        }
    }
}

fn right_spine(t: &Term, p: &mut SizePolynomial) {
    match t {
        Term::Var(v) => {
            *p.coeffs.entry(*v).or_insert(0) += 1;
        }
        Term::App(_, args) => match args.last() {
            None => {}
            Some(last) => {
                p.constant += 1;
                right_spine(last, p);
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    fn t(src: &str) -> Term {
        parse_term(src).unwrap()
    }

    #[test]
    fn structural_matches_term_method() {
        let term = t("f(a, [b, c], X)");
        assert_eq!(Norm::StructuralSize.polynomial(&term), term.size_polynomial());
    }

    #[test]
    fn list_length_on_lists() {
        // |[a, b, c]| = 3 regardless of element sizes.
        assert_eq!(Norm::ListLength.ground_size(&t("[a, b, c]")), Some(3));
        assert_eq!(Norm::ListLength.ground_size(&t("[f(f(f(a))), g(b, c, d)]")), Some(2));
        // Structural size counts everything.
        assert_eq!(Norm::StructuralSize.ground_size(&t("[a, b, c]")), Some(6));
    }

    #[test]
    fn list_length_open_list() {
        // |[a, b | T]| = 2 + T.
        let p = Norm::ListLength.polynomial(&t("[a, b | T]"));
        assert_eq!(p.constant, 2);
        assert_eq!(p.coeffs.len(), 1);
        assert_eq!(p.coeffs.values().copied().sum::<u64>(), 1);
    }

    #[test]
    fn list_length_ignores_left_subtrees() {
        // node(Big, x, leaf): right spine walks node -> leaf only.
        let p = Norm::ListLength.polynomial(&t("node(Big, x, leaf)"));
        assert_eq!(p.constant, 1, "one step into the rightmost child");
        assert!(p.coeffs.is_empty(), "Big is in the left subtree");
    }

    #[test]
    fn constants_are_zero_under_both() {
        for n in [Norm::StructuralSize, Norm::ListLength] {
            assert_eq!(n.ground_size(&t("a")), Some(0), "{}", n.name());
            assert_eq!(n.ground_size(&t("[]")), Some(0), "{}", n.name());
        }
    }

    #[test]
    fn variables_are_themselves() {
        for n in [Norm::StructuralSize, Norm::ListLength] {
            let p = n.polynomial(&t("X"));
            assert_eq!(p.constant, 0);
            assert_eq!(p.coeffs.len(), 1);
        }
    }

    #[test]
    fn names() {
        assert_eq!(Norm::StructuralSize.name(), "structural-size");
        assert_eq!(Norm::ListLength.name(), "list-length");
        assert_eq!(Norm::default(), Norm::StructuralSize);
    }
}
