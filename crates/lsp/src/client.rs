//! A scripted-session LSP client, mirroring `argus_serve::client`.
//!
//! Drives a server over any `Read`/`Write` pair — an in-process loopback
//! socket ([`crate::spawn_in_process`]), or a spawned `argus lsp` child's
//! stdio. Used by the crate tests, the `lsp` bench suite, and the
//! `lsp_session` CI lane, so the protocol exercised in CI is exactly the
//! protocol production editors speak.
//!
//! Responses are matched to requests by id; server-initiated
//! notifications encountered along the way are buffered and can be
//! awaited with [`LspClient::wait_notification`] (most callers use the
//! [`LspClient::wait_publish`] / [`LspClient::wait_stats`] wrappers).

use crate::framing::{read_frame, write_frame, FrameError, FrameLimits};
use crate::rpc::notification;
use argus_serve::jsonval::{self, json_str, Json};
use std::collections::VecDeque;
use std::io::{BufReader, Read, Write};
use std::sync::mpsc::{self, Receiver};
use std::time::{Duration, Instant};

/// How long [`LspClient`] waits for any single expected message before
/// panicking (scripted sessions are test/bench harnesses — a hang is a
/// bug, and a loud early failure beats a CI timeout).
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A scripted LSP client.
pub struct LspClient {
    writer: Box<dyn Write + Send>,
    incoming: Receiver<Result<String, FrameError>>,
    next_id: i64,
    /// Buffered server notifications `(method, params)`, oldest first.
    pub notifications: VecDeque<(String, Json)>,
}

impl LspClient {
    /// Wrap a transport. The reader is consumed by a background thread.
    pub fn new(
        reader: impl Read + Send + 'static,
        writer: impl Write + Send + 'static,
    ) -> LspClient {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let limits = FrameLimits::default();
            let mut r = BufReader::new(reader);
            loop {
                let msg = read_frame(&mut r, &limits);
                let stop = msg.is_err();
                if tx.send(msg).is_err() || stop {
                    return;
                }
            }
        });
        LspClient {
            writer: Box::new(writer),
            incoming: rx,
            next_id: 0,
            notifications: VecDeque::new(),
        }
    }

    /// Wrap a spawned server child's piped stdio.
    pub fn over_child(child: &mut std::process::Child) -> LspClient {
        let stdin = child.stdin.take().expect("child stdin piped");
        let stdout = child.stdout.take().expect("child stdout piped");
        LspClient::new(stdout, stdin)
    }

    /// Send a raw frame (for hostile-input tests).
    pub fn send_raw(&mut self, payload: &str) {
        write_frame(&mut self.writer, payload).expect("write frame");
    }

    /// Send raw bytes, bypassing framing entirely (for hostile-input
    /// tests of the framing layer itself).
    pub fn send_bytes(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write bytes");
        self.writer.flush().expect("flush");
    }

    /// Send a notification. `params` is pre-rendered JSON text.
    pub fn notify(&mut self, method: &str, params: &str) {
        self.send_raw(&notification(method, params));
    }

    /// Send a request and wait for its response; notifications that
    /// arrive first are buffered. `Err` carries the responder's
    /// `(code, message)`.
    pub fn request(&mut self, method: &str, params: &str) -> Result<Json, (i64, String)> {
        self.next_id += 1;
        let id = self.next_id;
        self.send_raw(&format!(
            "{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":{},\"params\":{params}}}",
            json_str(method)
        ));
        loop {
            let msg = self.next_message();
            if let Some(m) = msg.get("method").and_then(Json::as_str) {
                let params = msg.get("params").cloned().unwrap_or(Json::Null);
                self.notifications.push_back((m.to_string(), params));
                continue;
            }
            let got = msg.get("id").and_then(Json::as_u64);
            if got != Some(id as u64) {
                // A response to someone else's id would be a server bug —
                // surface it rather than deadlocking.
                panic!("response id {got:?} does not match request id {id}");
            }
            if let Some(err) = msg.get("error") {
                let code = err
                    .get("code")
                    .and_then(|c| match c {
                        Json::Num(n) => Some(*n as i64),
                        _ => None,
                    })
                    .unwrap_or(0);
                let message =
                    err.get("message").and_then(Json::as_str).unwrap_or_default().to_string();
                return Err((code, message));
            }
            return Ok(msg.get("result").cloned().unwrap_or(Json::Null));
        }
    }

    /// The next framed message from the server, parsed. Panics on EOF,
    /// framing errors, or timeout — scripted sessions treat all three as
    /// failures.
    fn next_message(&mut self) -> Json {
        match self.incoming.recv_timeout(RECV_TIMEOUT) {
            Ok(Ok(payload)) => jsonval::parse(&payload).expect("server sent valid JSON"),
            Ok(Err(e)) => panic!("server transport failed: {e}"),
            Err(_) => panic!("timed out waiting for a server message"),
        }
    }

    /// Wait for the next notification matching `pred`, buffering (and
    /// retaining) everything else that arrives first.
    pub fn wait_notification(
        &mut self,
        mut pred: impl FnMut(&str, &Json) -> bool,
    ) -> (String, Json) {
        // Check the buffer first.
        if let Some(i) = self.notifications.iter().position(|(m, p)| pred(m, p)) {
            return self.notifications.remove(i).unwrap();
        }
        let deadline = Instant::now() + RECV_TIMEOUT;
        while Instant::now() < deadline {
            let msg = self.next_message();
            let Some(m) = msg.get("method").and_then(Json::as_str) else {
                panic!("unexpected response while waiting for a notification: {msg:?}");
            };
            let params = msg.get("params").cloned().unwrap_or(Json::Null);
            if pred(m, &params) {
                return (m.to_string(), params);
            }
            self.notifications.push_back((m.to_string(), params));
        }
        panic!("timed out waiting for a notification");
    }

    /// Wait for `textDocument/publishDiagnostics` for `uri` at version ≥
    /// `min_version`; returns the params object.
    pub fn wait_publish(&mut self, uri: &str, min_version: i64) -> Json {
        self.wait_notification(|method, params| {
            method == "textDocument/publishDiagnostics"
                && params.get("uri").and_then(Json::as_str) == Some(uri)
                && params
                    .get("version")
                    .and_then(Json::as_u64)
                    .is_some_and(|v| v as i64 >= min_version)
        })
        .1
    }

    /// Wait for the `$/argus/stats` notification for `uri` at exactly
    /// `version`; returns the params object (memo counters + latency).
    pub fn wait_stats(&mut self, uri: &str, version: i64) -> Json {
        self.wait_notification(|method, params| {
            method == "$/argus/stats"
                && params.get("uri").and_then(Json::as_str) == Some(uri)
                && params.get("version").and_then(Json::as_u64) == Some(version as u64)
        })
        .1
    }

    /// Wait for the next error response (hostile-input replies carry
    /// `id: null`), buffering notifications; returns `(id, code)`.
    pub fn wait_error(&mut self) -> (Json, i64) {
        loop {
            let msg = self.next_message();
            if let Some(m) = msg.get("method").and_then(Json::as_str) {
                let params = msg.get("params").cloned().unwrap_or(Json::Null);
                self.notifications.push_back((m.to_string(), params));
                continue;
            }
            let Some(err) = msg.get("error") else {
                panic!("expected an error response, got {msg:?}");
            };
            let code = match err.get("code") {
                Some(Json::Num(n)) => *n as i64,
                _ => 0,
            };
            return (msg.get("id").cloned().unwrap_or(Json::Null), code);
        }
    }

    // ---- protocol conveniences -------------------------------------

    /// `initialize` (+ `initialized`), returning the server capabilities.
    /// `initialization_options` is pre-rendered JSON.
    pub fn initialize(&mut self, initialization_options: Option<&str>) -> Json {
        let params = match initialization_options {
            Some(opts) => format!("{{\"initializationOptions\":{opts}}}"),
            None => "{}".to_string(),
        };
        let result = self.request("initialize", &params).expect("initialize succeeds");
        self.notify("initialized", "{}");
        result
    }

    /// `textDocument/didOpen`.
    pub fn did_open(&mut self, uri: &str, version: i64, text: &str) {
        self.notify(
            "textDocument/didOpen",
            &format!(
                "{{\"textDocument\":{{\"uri\":{},\"languageId\":\"prolog\",\
                 \"version\":{version},\"text\":{}}}}}",
                json_str(uri),
                json_str(text)
            ),
        );
    }

    /// `textDocument/didChange` with a single full-text change.
    pub fn did_change_full(&mut self, uri: &str, version: i64, text: &str) {
        self.notify(
            "textDocument/didChange",
            &format!(
                "{{\"textDocument\":{{\"uri\":{},\"version\":{version}}},\
                 \"contentChanges\":[{{\"text\":{}}}]}}",
                json_str(uri),
                json_str(text)
            ),
        );
    }

    /// `textDocument/didChange` with a single ranged (incremental) edit.
    pub fn did_change_range(
        &mut self,
        uri: &str,
        version: i64,
        range: ((usize, usize), (usize, usize)),
        text: &str,
    ) {
        let ((sl, sc), (el, ec)) = range;
        self.notify(
            "textDocument/didChange",
            &format!(
                "{{\"textDocument\":{{\"uri\":{},\"version\":{version}}},\
                 \"contentChanges\":[{{\"range\":{{\
                 \"start\":{{\"line\":{sl},\"character\":{sc}}},\
                 \"end\":{{\"line\":{el},\"character\":{ec}}}}},\"text\":{}}}]}}",
                json_str(uri),
                json_str(text)
            ),
        );
    }

    /// `textDocument/didClose`.
    pub fn did_close(&mut self, uri: &str) {
        self.notify(
            "textDocument/didClose",
            &format!("{{\"textDocument\":{{\"uri\":{}}}}}", json_str(uri)),
        );
    }

    /// `textDocument/didSave`.
    pub fn did_save(&mut self, uri: &str) {
        self.notify(
            "textDocument/didSave",
            &format!("{{\"textDocument\":{{\"uri\":{}}}}}", json_str(uri)),
        );
    }

    /// `textDocument/hover` at a 0-based UTF-16 position.
    pub fn hover(&mut self, uri: &str, line: usize, character: usize) -> Json {
        self.request(
            "textDocument/hover",
            &format!(
                "{{\"textDocument\":{{\"uri\":{}}},\
                 \"position\":{{\"line\":{line},\"character\":{character}}}}}",
                json_str(uri)
            ),
        )
        .expect("hover succeeds")
    }

    /// Orderly `shutdown` → `exit`.
    pub fn shutdown_exit(&mut self) {
        self.request("shutdown", "null").expect("shutdown succeeds");
        self.notify("exit", "null");
    }
}
