//! Seeded generation of well-moded logic programs with tunable shape.
//!
//! Programs are built SCC by SCC, bottom-up: each SCC is a ring of mutually
//! recursive predicates over a single *measure shape* (lists consumed down
//! the spine, or Peano naturals), and higher SCCs may call into lower ones
//! with inputs that are bound at the call site. Every predicate has one
//! input position (bound under the generated query mode) and up to
//! [`GenOptions::max_outputs`] output positions; clauses are constructed so
//! the program is well-moded by induction — base clauses ground their
//! outputs, recursive clauses build outputs only from head-bound variables
//! and outputs of earlier body calls.
//!
//! The interesting knob is [`GenOptions::growth`]: with it on, a recursive
//! call may pass an argument that is the *same size* as (or larger than)
//! the head's input, producing programs the analyzer must refuse to prove —
//! the population of `Unknown`/`ZeroWeightCycle` verdicts that the
//! differential oracle then confirms really do run away.

use argus_logic::modes::Adornment;
use argus_logic::program::{Atom, Literal, PredKey, Program, Rule};
use argus_logic::term::Term;
use argus_prng::Rng64;

/// Shape of the measure an SCC recurses on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Cons lists over the constants `a`, `b`, `c`.
    List,
    /// Peano naturals `z`, `s(z)`, `s(s(z))`, …
    Nat,
}

/// Tunable shape of the generated programs.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Maximum number of SCC levels (≥ 1).
    pub max_sccs: usize,
    /// Maximum predicates per SCC (mutual-recursion width, ≥ 1).
    pub max_width: usize,
    /// Maximum output (free) argument positions per predicate.
    pub max_outputs: usize,
    /// Allow nonlinear recursion (two recursive calls in one clause).
    pub nonlinear: bool,
    /// Allow same-size / growing recursive arguments (programs that do not
    /// terminate and must not be proved).
    pub growth: bool,
    /// Allow negated goals (off by default: negation-as-failure adds noise
    /// without exercising the size argument).
    pub negation: bool,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions {
            max_sccs: 3,
            max_width: 2,
            max_outputs: 2,
            nonlinear: true,
            growth: true,
            negation: false,
        }
    }
}

/// One generated fuzz case: a program plus the query the analyzer is asked
/// about (input position bound, outputs free).
#[derive(Debug, Clone)]
pub struct GenCase {
    /// The generated program.
    pub program: Program,
    /// The query predicate (first predicate of the top SCC).
    pub query: PredKey,
    /// Its adornment: `b` for the input, `f` per output.
    pub adornment: Adornment,
    /// True iff some reachable recursive call uses a same-size/growing
    /// argument (the case is expected not to be provable).
    pub has_growth: bool,
    /// True iff some clause has two recursive calls.
    pub has_nonlinear: bool,
}

/// A predicate slot during generation.
#[derive(Debug, Clone)]
struct Slot {
    key: PredKey,
    outputs: usize,
}

const CONSTS: &[&str] = &["a", "b", "c"];

fn ground_leaf(r: &mut Rng64, shape: Shape) -> Term {
    match shape {
        Shape::List => match r.below(3) {
            0 => Term::nil(),
            1 => Term::atom(*r.pick(CONSTS)),
            _ => Term::list([Term::atom(*r.pick(CONSTS))]),
        },
        Shape::Nat => match r.below(3) {
            0 => Term::atom("z"),
            1 => Term::atom(*r.pick(CONSTS)),
            _ => Term::app("s", vec![Term::atom("z")]),
        },
    }
}

/// Generate one case from the given rng (drawn from the case's seed).
pub fn generate(r: &mut Rng64, opts: &GenOptions) -> GenCase {
    let nsccs = r.range_usize(1, opts.max_sccs.max(1));
    let mut rules: Vec<Rule> = Vec::new();
    let mut lower: Vec<Slot> = Vec::new(); // predicates of strictly lower SCCs
    let mut top: Vec<Slot> = Vec::new();
    let mut has_growth = false;
    let mut has_nonlinear = false;
    let mut negation_used = false;

    for s in 0..nsccs {
        let width = r.range_usize(1, opts.max_width.max(1));
        let shape = if r.bool() { Shape::List } else { Shape::Nat };
        let slots: Vec<Slot> = (0..width)
            .map(|i| {
                let outputs = r.range_usize(0, opts.max_outputs);
                Slot { key: PredKey::new(format!("p{s}_{i}"), 1 + outputs), outputs }
            })
            .collect();

        for (i, slot) in slots.iter().enumerate() {
            let nonlinear = opts.nonlinear && r.below(4) == 0;
            // Nonlinear predicates get exactly one base + one recursive
            // clause so the all-solutions search tree stays within the
            // interpreter budget on terminating cases.
            let nbase = if nonlinear { 1 } else { r.range_usize(1, 2) };
            let nrec = if nonlinear { 1 } else { r.range_usize(1, 2) };
            for _ in 0..nbase {
                rules.push(base_clause(r, slot, shape));
            }
            for _ in 0..nrec {
                let (rule, grew) = rec_clause(
                    r,
                    slot,
                    &slots,
                    i,
                    shape,
                    nonlinear,
                    &lower,
                    opts,
                    &mut negation_used,
                );
                has_growth |= grew;
                has_nonlinear |= nonlinear;
                rules.push(rule);
            }
        }
        lower.extend(slots.iter().cloned());
        top = slots;
    }

    if negation_used {
        // Facts for the negated EDB guard.
        rules.push(Rule::fact(Atom::new("absent", vec![Term::atom("c")])));
    }

    let q = top[0].clone();
    let mut adornment = String::from("b");
    adornment.push_str(&"f".repeat(q.outputs));
    GenCase {
        program: Program::from_rules(rules),
        query: q.key,
        adornment: Adornment::parse(&adornment).expect("generated adornment is valid"),
        has_growth,
        has_nonlinear,
    }
}

/// Deterministic large program for the `scale` bench suite and the CI
/// scaling lane. Levels are generated with the same clause shapes as
/// [`generate`], but the level count is driven by a clause target rather
/// than drawn at random, and every level gets a bridging clause whose body
/// calls the level below — so the whole program is reachable from the
/// query and the analyzer walks a chain of thousands of SCCs. Growth and
/// negation are off: every case is provable end to end, which maximizes
/// the FM work per SCC (proofs run to completion instead of bailing).
pub fn scale_case(seed: u64, target_clauses: usize) -> GenCase {
    let opts = GenOptions { growth: false, negation: false, ..GenOptions::default() };
    let mut r = Rng64::new(seed);
    let mut rules: Vec<Rule> = Vec::new();
    let mut prev: Vec<Slot> = Vec::new(); // slots of the level just below
    let mut top: Vec<Slot> = Vec::new();
    let mut has_nonlinear = false;
    let mut negation_used = false;
    let mut s = 0usize;
    while rules.len() < target_clauses.max(1) {
        let width = r.range_usize(1, opts.max_width);
        let shape = if r.bool() { Shape::List } else { Shape::Nat };
        let slots: Vec<Slot> = (0..width)
            .map(|i| {
                let outputs = r.range_usize(0, opts.max_outputs);
                Slot { key: PredKey::new(format!("p{s}_{i}"), 1 + outputs), outputs }
            })
            .collect();
        for (i, slot) in slots.iter().enumerate() {
            let nonlinear = opts.nonlinear && r.below(4) == 0;
            let nbase = if nonlinear { 1 } else { r.range_usize(1, 2) };
            let nrec = if nonlinear { 1 } else { r.range_usize(1, 2) };
            for _ in 0..nbase {
                rules.push(base_clause(&mut r, slot, shape));
            }
            for _ in 0..nrec {
                let (rule, _) = rec_clause(
                    &mut r,
                    slot,
                    &slots,
                    i,
                    shape,
                    nonlinear,
                    &prev,
                    &opts,
                    &mut negation_used,
                );
                has_nonlinear |= nonlinear;
                rules.push(rule);
            }
        }
        // Bridging clause: the level's first predicate always steps down
        // into the level below, so reachability from the query covers the
        // entire chain regardless of which optional lower calls were drawn.
        if let Some(callee) = prev.first() {
            let head = &slots[0];
            let (input, rec) = match shape {
                Shape::List => (Term::cons(Term::var("X"), Term::var("Xs")), Term::var("Xs")),
                Shape::Nat => (Term::app("s", vec![Term::var("N")]), Term::var("N")),
            };
            let mut bound: Vec<Term> = match shape {
                Shape::List => vec![Term::var("X"), Term::var("Xs")],
                Shape::Nat => vec![Term::var("N")],
            };
            let mut call_args = vec![rec];
            for k in 0..callee.outputs {
                let v = Term::var(format!("B{}", k + 1));
                call_args.push(v.clone());
                bound.push(v);
            }
            let mut head_args = vec![input];
            for _ in 0..head.outputs {
                head_args.push(output_term(&mut r, shape, &bound));
            }
            rules.push(Rule::new(
                Atom::new(head.key.name.as_ref(), head_args),
                vec![Literal::pos(Atom::new(callee.key.name.as_ref(), call_args))],
            ));
        }
        prev = slots.clone();
        top = slots;
        s += 1;
    }

    let q = top[0].clone();
    let mut adornment = String::from("b");
    adornment.push_str(&"f".repeat(q.outputs));
    GenCase {
        program: Program::from_rules(rules),
        query: q.key,
        adornment: Adornment::parse(&adornment).expect("generated adornment is valid"),
        has_growth: false,
        has_nonlinear,
    }
}

/// A base clause: the input matches the measure's bottom (or a singleton),
/// outputs are ground or copied from head-bound variables.
fn base_clause(r: &mut Rng64, slot: &Slot, shape: Shape) -> Rule {
    let (input, bound): (Term, Vec<Term>) = match shape {
        Shape::List => {
            if r.below(3) == 0 {
                (Term::list([Term::var("E")]), vec![Term::var("E")])
            } else {
                (Term::nil(), vec![])
            }
        }
        Shape::Nat => (Term::atom("z"), vec![]),
    };
    let mut args = vec![input];
    for _ in 0..slot.outputs {
        if !bound.is_empty() && r.below(3) == 0 {
            args.push(bound[r.below(bound.len() as u64) as usize].clone());
        } else {
            args.push(ground_leaf(r, shape));
        }
    }
    Rule::fact(Atom::new(slot.key.name.as_ref(), args))
}

/// The recursive argument passed down: strictly smaller, same size, or
/// larger than the head input. Returns (term, grew).
fn rec_arg(r: &mut Rng64, shape: Shape, step2: bool, growth: bool) -> (Term, bool) {
    if growth && r.below(4) == 0 {
        // Same-size or growing: the program may run away.
        let t = match shape {
            Shape::List => {
                if r.bool() {
                    // Same size: re-cons the head element.
                    Term::cons(Term::var("X"), Term::var("Xs"))
                } else {
                    // Growing: push an extra constant on top.
                    Term::cons(
                        Term::atom(*r.pick(CONSTS)),
                        Term::cons(Term::var("X"), Term::var("Xs")),
                    )
                }
            }
            Shape::Nat => {
                if r.bool() {
                    Term::app("s", vec![Term::var("N")])
                } else {
                    Term::app("s", vec![Term::app("s", vec![Term::var("N")])])
                }
            }
        };
        return (t, true);
    }
    let t = match shape {
        Shape::List => {
            if step2 && r.bool() {
                // Drop one of the two matched elements but keep the other.
                Term::cons(Term::var("Y"), Term::var("Xs"))
            } else {
                Term::var("Xs")
            }
        }
        Shape::Nat => Term::var("N"),
    };
    (t, false)
}

/// A recursive clause for `slot` inside its SCC ring.
#[allow(clippy::too_many_arguments)]
fn rec_clause(
    r: &mut Rng64,
    slot: &Slot,
    ring: &[Slot],
    index: usize,
    shape: Shape,
    nonlinear: bool,
    lower: &[Slot],
    opts: &GenOptions,
    negation_used: &mut bool,
) -> (Rule, bool) {
    // Head input pattern and the variables it binds.
    let step2 = shape == Shape::List && r.below(4) == 0;
    let input = match shape {
        Shape::List if step2 => {
            Term::cons(Term::var("X"), Term::cons(Term::var("Y"), Term::var("Xs")))
        }
        Shape::List => Term::cons(Term::var("X"), Term::var("Xs")),
        Shape::Nat => Term::app("s", vec![Term::var("N")]),
    };
    let mut head_bound: Vec<Term> = match shape {
        Shape::List if step2 => vec![Term::var("X"), Term::var("Y"), Term::var("Xs")],
        Shape::List => vec![Term::var("X"), Term::var("Xs")],
        Shape::Nat => vec![Term::var("N")],
    };

    let mut body: Vec<Literal> = Vec::new();
    let mut grew = false;
    let mut fresh = 0usize;
    let mut call_outputs: Vec<Term> = Vec::new();

    // Optional negated guard on a head-bound variable (EDB, binds nothing).
    if opts.negation && r.below(6) == 0 {
        *negation_used = true;
        body.push(Literal::neg(Atom::new("absent", vec![head_bound[0].clone()])));
    }

    // Optional call into a lower SCC, input bound from the head.
    if !lower.is_empty() && r.below(2) == 0 {
        let callee = r.pick(lower).clone();
        let arg = match shape {
            Shape::List => Term::var("Xs"),
            Shape::Nat => Term::var("N"),
        };
        let mut args = vec![arg];
        for _ in 0..callee.outputs {
            fresh += 1;
            let v = Term::var(format!("L{fresh}"));
            call_outputs.push(v.clone());
            args.push(v);
        }
        body.push(Literal::pos(Atom::new(callee.key.name.as_ref(), args)));
    }

    // Recursive call(s) around the ring.
    let ncalls = if nonlinear { 2 } else { 1 };
    for c in 0..ncalls {
        let callee = &ring[(index + 1 + c * (ring.len().saturating_sub(1))) % ring.len()];
        let (arg, g) = rec_arg(r, shape, step2, opts.growth);
        grew |= g;
        let mut args = vec![arg];
        for _ in 0..callee.outputs {
            fresh += 1;
            let v = Term::var(format!("R{fresh}"));
            call_outputs.push(v.clone());
            args.push(v);
        }
        body.push(Literal::pos(Atom::new(callee.key.name.as_ref(), args)));
    }

    // Head outputs, built only from bound material.
    head_bound.extend(call_outputs);
    let mut head_args = vec![input];
    for _ in 0..slot.outputs {
        head_args.push(output_term(r, shape, &head_bound));
    }
    (Rule::new(Atom::new(slot.key.name.as_ref(), head_args), body), grew)
}

/// A ground-by-induction output: a constant, a bound variable, or a
/// constructor wrapped around a bound variable.
fn output_term(r: &mut Rng64, shape: Shape, bound: &[Term]) -> Term {
    if bound.is_empty() || r.below(4) == 0 {
        return ground_leaf(r, shape);
    }
    let v = bound[r.below(bound.len() as u64) as usize].clone();
    match r.below(3) {
        0 => v,
        1 => match shape {
            Shape::List => Term::cons(Term::atom(*r.pick(CONSTS)), v),
            Shape::Nat => Term::app("s", vec![v]),
        },
        _ => match shape {
            Shape::List => Term::cons(v, Term::nil()),
            Shape::Nat => Term::app("s", vec![v]),
        },
    }
}

/// The bounded ground-input family the differential oracle drives: both
/// measure shapes are always included (inputs of the wrong shape simply
/// fail finitely), so the family is independent of the generated program —
/// which keeps it stable while the shrinker rewrites the program.
pub fn ground_inputs() -> Vec<Term> {
    let lists = [
        Term::nil(),
        Term::list([Term::atom("a")]),
        Term::list([Term::atom("a"), Term::atom("b")]),
        Term::list([Term::atom("b"), Term::atom("a"), Term::atom("c")]),
        Term::list([Term::atom("a"), Term::atom("b"), Term::atom("c"), Term::atom("a")]),
    ];
    let mut nat = Term::atom("z");
    let mut out: Vec<Term> = lists.to_vec();
    out.push(nat.clone());
    for _ in 0..4 {
        nat = Term::app("s", vec![nat]);
        out.push(nat.clone());
    }
    out
}

/// The goal list for one ground input against `query`: input bound,
/// outputs fresh variables.
pub fn ground_query(query: &PredKey, input: Term) -> Vec<Literal> {
    let mut args = vec![input];
    for i in 1..query.arity {
        args.push(Term::var(format!("Out{i}")));
    }
    vec![Literal::pos(Atom::new(query.name.as_ref(), args))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let opts = GenOptions::default();
        let a = generate(&mut Rng64::new(42), &opts);
        let b = generate(&mut Rng64::new(42), &opts);
        assert_eq!(a.program, b.program);
        assert_eq!(a.query, b.query);
        assert_ne!(a.program, generate(&mut Rng64::new(43), &opts).program);
    }

    #[test]
    fn generated_programs_parse_back() {
        let opts = GenOptions::default();
        let mut r = Rng64::new(7);
        for _ in 0..100 {
            let case = generate(&mut r, &opts);
            let printed = case.program.to_string();
            let back = argus_logic::parser::parse_program(&printed)
                .unwrap_or_else(|e| panic!("generated program does not reparse: {e}\n{printed}"));
            assert_eq!(back, case.program);
        }
    }

    #[test]
    fn query_is_defined_and_adornment_matches() {
        let opts = GenOptions::default();
        let mut r = Rng64::new(11);
        for _ in 0..50 {
            let case = generate(&mut r, &opts);
            assert!(case.program.idb_predicates().contains(&case.query));
            assert_eq!(case.adornment.arity(), case.query.arity);
            assert_eq!(case.adornment.bound_positions(), vec![0]);
        }
    }

    #[test]
    fn scale_case_is_deterministic_and_reachable() {
        let a = scale_case(5, 500);
        let b = scale_case(5, 500);
        assert_eq!(a.program, b.program);
        assert!(a.program.rules.len() >= 500);
        assert!(!a.has_growth);
        // The whole chain is reachable from the query: walk call edges.
        use std::collections::BTreeSet;
        let mut reach: BTreeSet<PredKey> = [a.query.clone()].into_iter().collect();
        loop {
            let mut grew = false;
            for r in &a.program.rules {
                if reach.contains(&r.head.key()) {
                    for l in &r.body {
                        grew |= reach.insert(l.atom.key());
                    }
                }
            }
            if !grew {
                break;
            }
        }
        for p in a.program.idb_predicates() {
            assert!(reach.contains(&p), "unreachable predicate {p:?}");
        }
        // And it reparses.
        let printed = a.program.to_string();
        let back = argus_logic::parser::parse_program(&printed).expect("reparse");
        assert_eq!(back, a.program);
    }

    #[test]
    fn growth_off_means_strictly_decreasing() {
        let opts = GenOptions { growth: false, ..GenOptions::default() };
        let mut r = Rng64::new(3);
        for _ in 0..50 {
            assert!(!generate(&mut r, &opts).has_growth);
        }
    }
}
