//! E7e — interpreter engine comparison: the cloning reference interpreter
//! vs the trail-based machine. The machine's O(1) backtracking shows on
//! backtracking-heavy workloads (perm enumerates n! answers).

use argus_interp::machine::solve_iterative;
use argus_interp::sld::{solve, InterpOptions};
use argus_logic::parser::{parse_program, parse_query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let perm_src = "perm([], []).\n\
                    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
                    append([], Ys, Ys).\n\
                    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";
    let program = parse_program(perm_src).unwrap();
    let opts = InterpOptions { max_steps: 10_000_000, ..InterpOptions::default() };

    let mut group = c.benchmark_group("interp/perm-enumerate");
    group.sample_size(10);
    for n in [3usize, 4, 5] {
        let atoms: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let q = format!("perm([{}], Q)", atoms.join(", "));
        let goals = parse_query(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| black_box(solve(&program, &goals, &opts)))
        });
        group.bench_with_input(BenchmarkId::new("trail-machine", n), &n, |b, _| {
            b.iter(|| black_box(solve_iterative(&program, &goals, &opts)))
        });
    }
    group.finish();

    // Deterministic deep descent (little backtracking): costs should be
    // closer, dominated by unification itself.
    let nrev_src = "app([], Ys, Ys).\napp([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n\
                    nrev([], []).\nnrev([X|Xs], R) :- nrev(Xs, R1), app(R1, [X], R).";
    let program = parse_program(nrev_src).unwrap();
    let mut group = c.benchmark_group("interp/nrev");
    group.sample_size(10);
    for n in [8usize, 16, 24] {
        let atoms: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let q = format!("nrev([{}], R)", atoms.join(", "));
        let goals = parse_query(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| black_box(solve(&program, &goals, &opts)))
        });
        group.bench_with_input(BenchmarkId::new("trail-machine", n), &n, |b, _| {
            b.iter(|| black_box(solve_iterative(&program, &goals, &opts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
