% argus fuzz reproducer
% kind: soundness
% seed: 0
% query: p0_0/1
% adornment: b
% detail: hand-minimized fixture: a same-size recursive call the analyzer must never prove (replayed to keep the format and the oracles honest)
p0_0([]).
p0_0([X|Xs]) :- p0_0([X|Xs]).
