//! Source spans for parsed syntax.
//!
//! The lexer records, for every token, its half-open byte range in the
//! source plus the 1-based line and (char-counted) column of its first
//! byte. The parser threads those positions into the AST so downstream
//! tools — above all the `argus-diag` lint passes — can point diagnostics
//! at the offending clause, literal, or atom.
//!
//! Spans are *metadata*, not syntax: two terms that differ only in where
//! they were written are still the same term. [`SpanSlot`] therefore wraps
//! an optional [`Span`] in a type that is transparent to `Eq`, `Ord`, and
//! `Hash`, so span-carrying AST nodes compare exactly as they did before
//! spans existed (e.g. a program still round-trips through its pretty-
//! printed form and compares equal).

use std::fmt;
use std::hash::{Hash, Hasher};

/// A source location: a half-open byte range plus the 1-based line and
/// column (counted in `char`s, not bytes) of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
    /// 1-based column of `start`, counted in chars.
    pub col: usize,
}

impl Span {
    /// Build a span.
    pub fn new(start: usize, end: usize, line: usize, col: usize) -> Span {
        Span { start, end, line, col }
    }

    /// The smallest span covering both `self` and `other`. Line/col come
    /// from whichever span starts first.
    pub fn join(&self, other: &Span) -> Span {
        let (first, _) = if self.start <= other.start { (self, other) } else { (other, self) };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True iff the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Does the span lie entirely within `outer`?
    pub fn within(&self, outer: &Span) -> bool {
        outer.start <= self.start && self.end <= outer.end
    }

    /// The spanned slice of `src`, if in bounds.
    pub fn slice<'s>(&self, src: &'s str) -> Option<&'s str> {
        src.get(self.start..self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An optional [`Span`] that is invisible to comparisons.
///
/// `SpanSlot`s always compare equal (and hash to nothing), so adding one to
/// an AST node does not change the node's `Eq`/`Ord`/`Hash` semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanSlot(pub Option<Span>);

impl SpanSlot {
    /// A slot holding `span`.
    pub fn some(span: Span) -> SpanSlot {
        SpanSlot(Some(span))
    }

    /// The empty slot (syntax built programmatically rather than parsed).
    pub fn none() -> SpanSlot {
        SpanSlot(None)
    }

    /// The held span, if any.
    pub fn get(&self) -> Option<Span> {
        self.0
    }
}

impl From<Span> for SpanSlot {
    fn from(s: Span) -> SpanSlot {
        SpanSlot(Some(s))
    }
}

impl PartialEq for SpanSlot {
    fn eq(&self, _: &SpanSlot) -> bool {
        true
    }
}

impl Eq for SpanSlot {}

impl PartialOrd for SpanSlot {
    fn partial_cmp(&self, other: &SpanSlot) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SpanSlot {
    fn cmp(&self, _: &SpanSlot) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl Hash for SpanSlot {
    fn hash<H: Hasher>(&self, _: &mut H) {}
}

/// A line index over a source string: maps byte offsets to 1-based
/// (line, column) positions, with columns counted in chars. Used by
/// diagnostic renderers; kept here so every consumer agrees with the
/// lexer's own position accounting.
#[derive(Debug, Clone)]
pub struct LineIndex {
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
}

impl LineIndex {
    /// Index `src`.
    pub fn new(src: &str) -> LineIndex {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex { line_starts }
    }

    /// The 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The 1-based (line, char column) of byte `offset` in `src`.
    pub fn line_col(&self, src: &str, offset: usize) -> (usize, usize) {
        let line = self.line_of(offset);
        let start = self.line_starts[line - 1];
        let upto = offset.min(src.len());
        let col = src[start..upto].chars().count() + 1;
        (line, col)
    }

    /// Byte offset of the start of 1-based line `line`.
    pub fn line_start(&self, line: usize) -> Option<usize> {
        self.line_starts.get(line.checked_sub(1)?).copied()
    }

    /// The text of 1-based line `line`, without its trailing newline.
    pub fn line_text<'s>(&self, src: &'s str, line: usize) -> &'s str {
        let Some(&start) = self.line_starts.get(line - 1) else { return "" };
        let end = self.line_starts.get(line).map(|&e| e.saturating_sub(1)).unwrap_or(src.len());
        src.get(start..end).unwrap_or("").trim_end_matches('\r')
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The 0-based UTF-16 column of byte `offset` — code units from the
    /// start of its line. This is the Language Server Protocol's position
    /// unit (neither bytes nor chars): characters outside the BMP count as
    /// two units, everything else as one. An offset inside a multi-byte
    /// scalar is treated as pointing at that scalar's start.
    pub fn utf16_col(&self, src: &str, offset: usize) -> usize {
        let offset = offset.min(src.len());
        let line = self.line_of(offset);
        let start = self.line_starts[line - 1];
        let mut col = 0;
        for (i, c) in src[start..].char_indices() {
            // Stop before any scalar that starts at — or straddles — the
            // offset, so mid-scalar offsets round down to the scalar start.
            if start + i + c.len_utf8() > offset {
                break;
            }
            col += c.len_utf16();
        }
        col
    }

    /// The 0-based (line, UTF-16 column) of byte `offset` — the LSP
    /// `Position` of that byte. Offsets past the end of the text clamp to
    /// the end position.
    pub fn utf16_position(&self, src: &str, offset: usize) -> (usize, usize) {
        let offset = offset.min(src.len());
        (self.line_of(offset) - 1, self.utf16_col(src, offset))
    }

    /// Byte offset of the 0-based LSP position (`line`, UTF-16 column
    /// `col`), the inverse of [`LineIndex::utf16_position`]. Per the LSP
    /// spec's lenient reading: a line past the end of the document maps to
    /// the end of the text, a column past the end of its line maps to the
    /// line end (before the newline), and a column landing inside a
    /// surrogate pair rounds down to the scalar's start.
    pub fn position_to_offset(&self, src: &str, line: usize, col: usize) -> usize {
        let Some(&start) = self.line_starts.get(line) else { return src.len() };
        let end = self
            .line_starts
            .get(line + 1)
            .map(|&e| e.saturating_sub(1)) // exclude the newline itself
            .unwrap_or(src.len());
        let line_text = src.get(start..end).unwrap_or("");
        let mut units = 0;
        for (i, c) in line_text.char_indices() {
            // `units + len > col` catches both an exact hit and a column
            // pointing at the low half of a surrogate pair (round down).
            if units >= col || units + c.len_utf16() > col {
                return start + i;
            }
            units += c.len_utf16();
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn span_join_and_slice() {
        let a = Span::new(2, 5, 1, 3);
        let b = Span::new(7, 9, 2, 1);
        let j = a.join(&b);
        assert_eq!((j.start, j.end, j.line, j.col), (2, 9, 1, 3));
        assert_eq!(Span::new(0, 5, 1, 1).slice("hello world"), Some("hello"));
        assert!(b.within(&j));
        assert!(!j.within(&b));
    }

    #[test]
    fn slot_is_invisible_to_comparisons() {
        let with = SpanSlot::some(Span::new(1, 2, 3, 4));
        let without = SpanSlot::none();
        assert_eq!(with, without);
        assert_eq!(with.cmp(&without), std::cmp::Ordering::Equal);
        let mut set = BTreeSet::new();
        set.insert((with, 1));
        assert!(set.contains(&(without, 1)));
    }

    #[test]
    fn utf16_positions_on_multibyte_quoted_atoms() {
        // 'é' is 2 bytes / 1 UTF-16 unit; '😀' is 4 bytes / 2 units.
        let src = "p('héllo').\nq('a😀b', X).\n";
        let ix = LineIndex::new(src);
        // Byte offset of the quote opening 'a😀b' on line 2.
        let q = src.find("'a😀b'").unwrap();
        assert_eq!(ix.utf16_position(src, q), (1, 2));
        // Offset of `b` inside the atom: q ( ' a then the 2-unit emoji.
        let b = src.find('b').unwrap();
        assert_eq!(ix.utf16_position(src, b), (1, 6));
        // End-of-text clamps.
        assert_eq!(ix.utf16_position(src, src.len() + 10), (2, 0));
    }

    #[test]
    fn position_offset_round_trip() {
        let src = "p('héllo').\nq('a😀b', X).\n'ωmega'(Y) :- q('a😀b', Y).\n";
        let ix = LineIndex::new(src);
        // Every char boundary round-trips exactly.
        for (off, _) in src.char_indices() {
            let (line, col) = ix.utf16_position(src, off);
            assert_eq!(ix.position_to_offset(src, line, col), off, "offset {off}");
        }
        let (line, col) = ix.utf16_position(src, src.len());
        assert_eq!(ix.position_to_offset(src, line, col), src.len());
    }

    #[test]
    fn position_to_offset_clamps_like_lsp() {
        let src = "p(a).\nq('é😀').\n";
        let ix = LineIndex::new(src);
        // Column past the line end clamps to the line end (before '\n').
        assert_eq!(ix.position_to_offset(src, 0, 99), 5);
        // Line past EOF clamps to the text end.
        assert_eq!(ix.position_to_offset(src, 42, 0), src.len());
        // A column inside the emoji's surrogate pair rounds down to the
        // scalar's start: the emoji spans units 4–5 of line 2 (q ( ' é).
        let emoji = src.find('😀').unwrap();
        assert_eq!(ix.position_to_offset(src, 1, 4), emoji);
        assert_eq!(ix.position_to_offset(src, 1, 5), emoji);
        // Mid-scalar byte offsets report the scalar's start column.
        assert_eq!(ix.utf16_col(src, emoji + 2), 4);
    }

    #[test]
    fn line_index_counts_chars_not_bytes() {
        let src = "aé b\ncd";
        let ix = LineIndex::new(src);
        // 'é' is 2 bytes; the space after it is at byte 3, char column 3.
        assert_eq!(ix.line_col(src, 3), (1, 3));
        assert_eq!(ix.line_col(src, src.len()), (2, 3));
        assert_eq!(ix.line_text(src, 1), "aé b");
        assert_eq!(ix.line_text(src, 2), "cd");
        assert_eq!(ix.line_count(), 2);
    }
}
