//! Property-based tests for terms, parsing, and unification.

use argus_logic::parser::{parse_program, parse_term};
use argus_logic::term::Term;
use argus_logic::unify::{mgu, Subst};
use proptest::prelude::*;

/// Random ground-ish terms (variables included) with bounded depth.
fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("nil")].prop_map(Term::atom),
        prop_oneof![Just("X"), Just("Y"), Just("Zs"), Just("W")].prop_map(Term::var),
        (-50i64..50).prop_map(Term::int),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![Just("f"), Just("g"), Just("node")],
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(f, args)| Term::app(f, args)),
            (inner.clone(), inner).prop_map(|(h, t)| Term::cons(h, t)),
        ]
    })
}

proptest! {
    /// Display → parse is the identity on terms.
    #[test]
    fn term_display_parse_roundtrip(t in term_strategy()) {
        let printed = t.to_string();
        let back = parse_term(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(back, t);
    }

    /// Ground terms have a size equal to their size polynomial's constant.
    #[test]
    fn ground_size_matches_polynomial(t in term_strategy()) {
        let p = t.size_polynomial();
        match t.ground_size() {
            Some(s) => {
                prop_assert!(t.is_ground());
                prop_assert_eq!(p.coeffs.len(), 0);
                prop_assert_eq!(s, p.constant);
            }
            None => prop_assert!(!t.is_ground()),
        }
    }

    /// The mgu, when it exists, actually unifies, and is idempotent.
    #[test]
    fn mgu_unifies_and_is_idempotent(a in term_strategy(), b in term_strategy()) {
        if let Some(s) = mgu(&a, &b, true) {
            let ra = s.resolve(&a);
            let rb = s.resolve(&b);
            prop_assert_eq!(&ra, &rb);
            // Idempotence: resolving again changes nothing.
            prop_assert_eq!(s.resolve(&ra), ra);
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn unification_symmetric(a in term_strategy(), b in term_strategy()) {
        prop_assert_eq!(mgu(&a, &b, true).is_some(), mgu(&b, &a, true).is_some());
    }

    /// A renamed-apart copy always unifies with the original when the
    /// original's variables don't clash (grounding both sides of fresh
    /// names), and renaming preserves the size polynomial constant.
    #[test]
    fn rename_preserves_structure(t in term_strategy()) {
        let r = t.rename_suffix("_fresh");
        prop_assert_eq!(t.size_polynomial().constant, r.size_polynomial().constant);
        prop_assert_eq!(t.depth(), r.depth());
        prop_assert_eq!(t.is_ground(), r.is_ground());
        if t.is_ground() {
            prop_assert_eq!(&r, &t);
        }
        prop_assert!(mgu(&t, &r, false).is_some(), "a term unifies with its renaming");
    }

    /// Substitution composition: resolving through an extended substitution
    /// equals resolving the resolved term.
    #[test]
    fn resolve_composes(a in term_strategy(), b in term_strategy()) {
        let mut s = Subst::new();
        if argus_logic::unify::unify(&mut s, &a, &b, true) {
            let once = s.resolve(&a);
            let twice = s.resolve(&once);
            prop_assert_eq!(once, twice);
        }
    }
}

/// Program-level round trip over generated programs assembled from random
/// rules (heads and bodies built from the term generator).
fn small_program_strategy() -> impl Strategy<Value = String> {
    fn atom() -> impl Strategy<Value = (&'static str, Vec<Term>)> {
        (
            prop_oneof![Just("p"), Just("q"), Just("r")],
            proptest::collection::vec(term_strategy(), 1..3),
        )
    }
    let rule = (atom(), proptest::collection::vec(atom(), 0..3));
    proptest::collection::vec(rule, 1..5).prop_map(|rules| {
        let mut out = String::new();
        for ((hname, hargs), body) in rules {
            let head = Term::app(hname, hargs);
            out.push_str(&head.to_string());
            if !body.is_empty() {
                out.push_str(" :- ");
                let goals: Vec<String> =
                    body.into_iter().map(|(n, args)| Term::app(n, args).to_string()).collect();
                out.push_str(&goals.join(", "));
            }
            out.push_str(".\n");
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn program_display_parse_roundtrip(src in small_program_strategy()) {
        let p1 = parse_program(&src).expect("generated source parses");
        let printed = p1.to_string();
        let p2 = parse_program(&printed).expect("printed program reparses");
        prop_assert_eq!(p1, p2);
    }

    /// SCC condensation partitions the predicates and respects edges.
    #[test]
    fn scc_partition_invariants(src in small_program_strategy()) {
        let program = parse_program(&src).unwrap();
        let graph = argus_logic::DepGraph::build(&program);
        let mut seen = std::collections::BTreeSet::new();
        for id in graph.sccs_bottom_up() {
            for p in graph.scc(id) {
                prop_assert!(seen.insert(p), "predicate in two SCCs");
            }
        }
        for p in program.all_predicates() {
            prop_assert!(seen.contains(&p), "predicate missing from SCCs");
        }
        // Bottom-up order: every subgoal's SCC is at or before the head's.
        let order = graph.sccs_bottom_up();
        let pos = |id: usize| order.iter().position(|&x| x == id).unwrap();
        for rule in &program.rules {
            let h = graph.scc_id(&rule.head.key()).unwrap();
            for l in &rule.body {
                let s = graph.scc_id(&l.atom.key()).unwrap();
                prop_assert!(pos(s) <= pos(h), "callee SCC after caller");
            }
        }
    }
}
