//! Assembly of the paper's Eq. (1) for one rule × recursive-subgoal pair.
//!
//! For a rule with head `pᵢ` and a chosen recursive subgoal `pⱼ`, the paper
//! sets up
//!
//! ```text
//! x = a + A·α      (bound-argument sizes of the head)
//! y = b + B·α      (bound-argument sizes of the recursive subgoal)
//! 0 = c + C·α      (imported feasibility constraints of subgoals that
//!                   PRECEDE pⱼ in the body, §3/§6.2)
//! x, y, α ≥ 0
//! ```
//!
//! where `α` collects the sizes of the rule's logical variables plus slack
//! variables introduced when an imported constraint is an inequality. The
//! entries of `a, A, b, B` are nonnegative by construction (they come from
//! structural-size polynomials, §2.2) — the dual step relies on this.
//!
//! We represent each row as a [`LinExpr`] over the α variables, whose
//! constant term carries the `a`/`b`/`c` entry.

use argus_linear::{Constraint, LinExpr, Rat, Rel, Var};
use argus_logic::modes::{Adornment, ModeMap, TEST_BUILTINS};
use argus_logic::{Norm, PredKey, Rule, Sym};
use argus_sizerel::SizeRelations;
use std::collections::BTreeMap;

/// The Eq. (1) data for one rule × recursive-subgoal combination.
#[derive(Debug, Clone)]
pub struct RuleSubgoalSystem {
    /// Head predicate `pᵢ`.
    pub head_pred: PredKey,
    /// Recursive subgoal predicate `pⱼ`.
    pub sub_pred: PredKey,
    /// Index of the rule in the SCC's rule list (for reporting).
    pub rule_index: usize,
    /// Index of the recursive subgoal within the rule body.
    pub subgoal_index: usize,
    /// Number of α variables (logical-variable sizes + slacks).
    pub alpha_count: usize,
    /// `x` rows: one expression `aᵢ + Aᵢ·α` per bound head argument.
    pub x_rows: Vec<LinExpr>,
    /// `y` rows: one expression `bⱼ + Bⱼ·α` per bound subgoal argument.
    pub y_rows: Vec<LinExpr>,
    /// `c` rows: expressions `cₖ + Cₖ·α` constrained to equal zero.
    pub c_rows: Vec<LinExpr>,
    /// Human-readable α variable names (for diagnostics).
    pub alpha_names: Vec<String>,
}

impl RuleSubgoalSystem {
    /// True iff every constant in `a` and `c` is zero — the paper's §6.1
    /// criterion forcing `δᵢⱼ = 0` for `i ≠ j` ("a dual constraint … has
    /// only zeros in cᵀ and aᵀ").
    pub fn forces_zero_delta(&self) -> bool {
        self.x_rows.iter().all(|r| r.constant_term().is_zero())
            && self.c_rows.iter().all(|r| r.constant_term().is_zero())
    }
}

/// Helper that assigns α indices to logical variables and slacks.
struct AlphaSpace {
    next: Var,
    vars: BTreeMap<Sym, Var>,
    names: Vec<String>,
    norm: Norm,
}

impl AlphaSpace {
    fn new(norm: Norm) -> AlphaSpace {
        AlphaSpace { next: 0, vars: BTreeMap::new(), names: Vec::new(), norm }
    }

    fn logical(&mut self, name: Sym) -> Var {
        *self.vars.entry(name).or_insert_with(|| {
            let v = self.next;
            self.next += 1;
            self.names.push(name.to_string());
            v
        })
    }

    fn slack(&mut self) -> Var {
        let v = self.next;
        self.next += 1;
        self.names.push(format!("sigma{v}"));
        v
    }

    /// Size polynomial of a term as a LinExpr over α.
    fn size_expr(&mut self, t: &argus_logic::Term) -> LinExpr {
        let sp = self.norm.polynomial(t);
        let mut e = LinExpr::constant(Rat::from_int(sp.constant as i64));
        for (name, coeff) in &sp.coeffs {
            let v = self.logical(*name);
            e.add_term(v, Rat::from_int(*coeff as i64));
        }
        e
    }
}

/// Build Eq. (1) for `rule` and the recursive subgoal at `subgoal_index`.
///
/// `modes` supplies the bound–free adornment of every predicate involved;
/// `rels` supplies the imported inter-argument feasibility constraints.
/// Preceding *negative* subgoals are discarded (Appendix D); preceding
/// positive subgoals — including earlier recursive ones (§6.2) — contribute
/// their size-relation polyhedra; comparison builtins contribute nothing
/// (Example 5.1).
pub fn build_pair(
    rule: &Rule,
    rule_index: usize,
    subgoal_index: usize,
    modes: &ModeMap,
    rels: &SizeRelations,
) -> RuleSubgoalSystem {
    build_pair_with_norm(rule, rule_index, subgoal_index, modes, rels, Norm::default())
}

/// [`build_pair`] under an explicit term-size norm (which must match the
/// norm the size relations were inferred in).
pub fn build_pair_with_norm(
    rule: &Rule,
    rule_index: usize,
    subgoal_index: usize,
    modes: &ModeMap,
    rels: &SizeRelations,
    norm: Norm,
) -> RuleSubgoalSystem {
    let head_pred = rule.head.key();
    let sub_atom = &rule.body[subgoal_index].atom;
    let sub_pred = sub_atom.key();

    let head_adornment =
        modes.get(&head_pred).cloned().unwrap_or_else(|| Adornment::all_bound(head_pred.arity));
    let sub_adornment =
        modes.get(&sub_pred).cloned().unwrap_or_else(|| Adornment::all_bound(sub_pred.arity));

    let mut alpha = AlphaSpace::new(norm);
    let mut x_rows = Vec::new();
    let mut y_rows = Vec::new();
    let mut c_rows = Vec::new();

    // x: bound head arguments.
    for i in head_adornment.bound_positions() {
        x_rows.push(alpha.size_expr(&rule.head.args[i]));
    }
    // y: bound subgoal arguments.
    for j in sub_adornment.bound_positions() {
        y_rows.push(alpha.size_expr(&sub_atom.args[j]));
    }

    // c: imported feasibility constraints of preceding positive subgoals.
    for lit in rule.body.iter().take(subgoal_index) {
        if !lit.positive {
            continue; // Appendix D: negative subgoals are discarded.
        }
        let key = lit.atom.key();
        match (&*key.name, key.arity) {
            ("=", 2) => {
                // Positive equality should have been eliminated by
                // preprocessing; if present, treat as a size equality.
                let ea = alpha.size_expr(&lit.atom.args[0]);
                let eb = alpha.size_expr(&lit.atom.args[1]);
                c_rows.push(&ea - &eb);
            }
            ("is", 2) => {
                // N is E binds N to an integer constant (size 0).
                let ea = alpha.size_expr(&lit.atom.args[0]);
                c_rows.push(ea);
            }
            (op, 2) if TEST_BUILTINS.contains(&op) => {
                // No size contribution (paper, Example 5.1).
            }
            _ => {
                let poly = rels.get_or_top(&key);
                if poly.is_empty() {
                    // Subgoal can never succeed: the recursive subgoal is
                    // unreachable through this rule. Encode the
                    // contradiction 0 = 1 so the pair is trivially
                    // satisfied for any θ (the primal is infeasible, so
                    // the decrease requirement holds vacuously).
                    c_rows.push(LinExpr::constant(Rat::one()));
                    continue;
                }
                // Argument-size expressions of this subgoal.
                let arg_exprs: Vec<LinExpr> =
                    lit.atom.args.iter().map(|t| alpha.size_expr(t)).collect();
                for c in poly.constraints().constraints() {
                    // Substitute dims by argument expressions.
                    let mut row = LinExpr::constant(c.expr.constant_term().clone());
                    for (dim, coeff) in c.expr.terms() {
                        row = row.add_scaled(&arg_exprs[dim], coeff);
                    }
                    match c.rel {
                        Rel::Eq => c_rows.push(row),
                        Rel::Le => {
                            // Rows like −E ≤ 0 are already implied by
                            // α ≥ 0: skip them rather than waste a slack
                            // and a dual variable on them.
                            let trivial = !row.constant_term().is_positive()
                                && row.terms().all(|(_, c)| !c.is_positive());
                            if trivial {
                                continue;
                            }
                            // row ≤ 0  ⇔  0 = row + σ, σ ≥ 0.
                            let s = alpha.slack();
                            row.add_term(s, Rat::one());
                            c_rows.push(row);
                        }
                    }
                }
            }
        }
    }

    RuleSubgoalSystem {
        head_pred,
        sub_pred,
        rule_index,
        subgoal_index,
        alpha_count: alpha.next,
        x_rows,
        y_rows,
        c_rows,
        alpha_names: alpha.names,
    }
}

/// The primal constraint system of Eq. (1) as an explicit
/// [`argus_linear::ConstraintSystem`] over variables
/// `x₀…, y₀…, α₀…` laid out contiguously. Used by tests and by the
/// LP-based (non-dual) decrease check that serves as an oracle.
pub fn primal_system(
    sys: &RuleSubgoalSystem,
) -> (argus_linear::ConstraintSystem, Vec<Var>, Vec<Var>, Vec<Var>) {
    let nx = sys.x_rows.len();
    let ny = sys.y_rows.len();
    let na = sys.alpha_count;
    let x_vars: Vec<Var> = (0..nx).collect();
    let y_vars: Vec<Var> = (nx..nx + ny).collect();
    let a_vars: Vec<Var> = (nx + ny..nx + ny + na).collect();
    let shift = |e: &LinExpr| -> LinExpr {
        let mut out = LinExpr::constant(e.constant_term().clone());
        for (v, c) in e.terms() {
            out.add_term(a_vars[v], c.clone());
        }
        out
    };
    let mut out = argus_linear::ConstraintSystem::new();
    for (i, e) in sys.x_rows.iter().enumerate() {
        out.push(Constraint::eq(LinExpr::var(x_vars[i]), shift(e)));
        out.push(Constraint::nonneg(x_vars[i]));
    }
    for (j, e) in sys.y_rows.iter().enumerate() {
        out.push(Constraint::eq(LinExpr::var(y_vars[j]), shift(e)));
        out.push(Constraint::nonneg(y_vars[j]));
    }
    for e in &sys.c_rows {
        out.push(Constraint::eq(shift(e), LinExpr::zero()));
    }
    for &v in &a_vars {
        out.push(Constraint::nonneg(v));
    }
    (out, x_vars, y_vars, a_vars)
}

/// Cache key for one per-pair dual projection, in *canonically renamed*
/// variable space (the projection routine renames the system's variables to
/// `0..k` in sorted order before keying and computing). Mutual-recursion
/// rings and fuzz corpora produce many structurally identical pair systems
/// that differ only in variable numbering; the rename makes them collide.
///
/// The canonical integer rows determine the Fourier–Motzkin run exactly
/// (elimination converts rows to [`argus_linear::IntRow`] up front), so two
/// systems with equal keys produce byte-identical projections.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProjectionKey {
    /// Canonical rows of the renamed system, in order (order matters: it
    /// fixes the Gaussian pivot choice and the output's equality ordering).
    pub rows: Vec<argus_linear::IntRow>,
    /// The renamed `w` variables to eliminate, sorted.
    pub eliminate: Vec<Var>,
    /// Redundancy tier index (different tiers may produce different row
    /// sets before the output is minimized, so they must not share entries).
    pub tier: u8,
    /// Row cap of the run.
    pub max_rows: usize,
}

/// A cached projection outcome: the renamed-space result plus the FM
/// counters its computation produced (replayed on every hit so stats totals
/// are independent of the hit/miss pattern).
#[derive(Debug, Clone)]
pub struct ProjectionEntry {
    /// The projected system in renamed space (`None`: infeasible/blowup).
    pub result: Option<argus_linear::ConstraintSystem>,
    /// FM counters of the (first) computation of this entry.
    pub stats: argus_linear::FmStats,
}

/// One resident cache entry with its LRU stamp and size estimate.
struct Slot {
    entry: ProjectionEntry,
    stamp: u64,
    bytes: usize,
}

/// One independently locked shard of the cache.
#[derive(Default)]
struct Shard {
    map: std::collections::HashMap<ProjectionKey, Slot>,
    bytes: usize,
}

/// Shared cache of per-pair dual projections, safe to use from the `par`
/// worker pool. Entries are pure functions of their key, and fills are
/// first-insert-wins (a racing second insert is discarded), so contents —
/// and therefore every analysis artifact — are deterministic at any
/// `--jobs` setting.
///
/// Two lifetimes use this type:
///
/// * **per-run** ([`ProjectionCache::new`], unbounded): one cache per
///   [`crate::analyze`] call, dropped with the report. The deterministic
///   identity `hits = requests − entries` holds because nothing is ever
///   evicted.
/// * **process-lifetime** ([`ProjectionCache::with_byte_budget`]): shared
///   across analyses (the `argus serve` path) and bounded by an approximate
///   resident-byte budget with least-recently-used eviction. Hit accounting
///   uses the explicit [`ProjectionCache::lookup_hits`] counter, since a
///   re-computed evicted key breaks the per-run identity.
pub struct ProjectionCache {
    shards: Vec<std::sync::Mutex<Shard>>,
    /// Per-shard byte budget (`usize::MAX`: unbounded).
    shard_budget: usize,
    requests: std::sync::atomic::AtomicU64,
    lookup_hits: std::sync::atomic::AtomicU64,
    computed: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
    /// Global LRU clock; every touch stamps the slot with the next tick.
    clock: std::sync::atomic::AtomicU64,
}

const PROJECTION_SHARDS: usize = 16;

/// Rough resident size of a key/entry pair. Counts the vectors and their
/// elements at `size_of` granularity; inline big-integer limbs and small
/// strings are not chased, so this undercounts by a small constant factor —
/// fine for a budget knob, not an allocator audit.
fn approx_slot_bytes(key: &ProjectionKey, entry: &ProjectionEntry) -> usize {
    use std::mem::size_of;
    let row = |r: &argus_linear::IntRow| {
        size_of::<argus_linear::IntRow>()
            + r.coeffs.len() * size_of::<(Var, argus_linear::BigInt)>()
    };
    let mut n = size_of::<ProjectionKey>() + size_of::<ProjectionEntry>() + size_of::<Slot>();
    n += key.rows.iter().map(row).sum::<usize>();
    n += key.eliminate.len() * size_of::<Var>();
    if let Some(sys) = &entry.result {
        for c in sys.constraints() {
            n += size_of::<argus_linear::Constraint>()
                + c.expr.terms().count() * size_of::<(Var, Rat)>();
        }
    }
    n
}

impl ProjectionCache {
    /// An empty, unbounded cache (the per-run configuration).
    pub fn new() -> ProjectionCache {
        ProjectionCache::with_shard_budget(usize::MAX)
    }

    /// An empty cache that evicts least-recently-used entries once the
    /// resident-size estimate exceeds `budget` bytes (the process-lifetime
    /// configuration). The budget is split evenly across the shards, so
    /// occupancy can undershoot it when keys hash unevenly.
    pub fn with_byte_budget(budget: usize) -> ProjectionCache {
        ProjectionCache::with_shard_budget((budget / PROJECTION_SHARDS).max(1))
    }

    fn with_shard_budget(shard_budget: usize) -> ProjectionCache {
        ProjectionCache {
            shards: (0..PROJECTION_SHARDS)
                .map(|_| std::sync::Mutex::new(Shard::default()))
                .collect(),
            shard_budget,
            requests: std::sync::atomic::AtomicU64::new(0),
            lookup_hits: std::sync::atomic::AtomicU64::new(0),
            computed: std::sync::atomic::AtomicU64::new(0),
            evictions: std::sync::atomic::AtomicU64::new(0),
            clock: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &ProjectionKey) -> &std::sync::Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::hash::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Look up `key`, counting the request and refreshing the LRU stamp on
    /// a hit.
    pub fn get(&self, key: &ProjectionKey) -> Option<ProjectionEntry> {
        use std::sync::atomic::Ordering::Relaxed;
        self.requests.fetch_add(1, Relaxed);
        let stamp = self.tick();
        let mut shard = self.shard(key).lock().expect("shard poisoned");
        let slot = shard.map.get_mut(key)?;
        slot.stamp = stamp;
        self.lookup_hits.fetch_add(1, Relaxed);
        Some(slot.entry.clone())
    }

    /// Publish a computed entry; returns the entry that ends up cached
    /// (an earlier racer's identical value, if one beat us to it). May
    /// evict least-recently-used entries from the key's shard to stay
    /// within the byte budget.
    pub fn publish(&self, key: ProjectionKey, entry: ProjectionEntry) -> ProjectionEntry {
        use std::sync::atomic::Ordering::Relaxed;
        let stamp = self.tick();
        let bytes = approx_slot_bytes(&key, &entry);
        let mut shard = self.shard(&key).lock().expect("shard poisoned");
        if let Some(slot) = shard.map.get(&key) {
            return slot.entry.clone();
        }
        self.computed.fetch_add(1, Relaxed);
        shard.bytes += bytes;
        shard.map.insert(key, Slot { entry: entry.clone(), stamp, bytes });
        while shard.bytes > self.shard_budget && shard.map.len() > 1 {
            // The fresh insert carries the newest stamp, so min-by-stamp
            // never selects it while anything older remains.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(k, _)| k.clone())
                .expect("nonempty shard");
            if let Some(gone) = shard.map.remove(&victim) {
                shard.bytes -= gone.bytes;
                self.evictions.fetch_add(1, Relaxed);
            }
        }
        entry
    }

    /// Total lookups so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn entries(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().expect("shard poisoned").map.len() as u64).sum()
    }

    /// Lookups answered from the cache, as the deterministic identity
    /// `requests − entries`. Exact for unbounded per-run caches (requests =
    /// pairs projected, entries = distinct keys — both independent of
    /// thread interleaving); meaningless once eviction is possible, where
    /// [`ProjectionCache::lookup_hits`] is the right counter.
    pub fn hits(&self) -> u64 {
        self.requests().saturating_sub(self.entries())
    }

    /// Lookups that found a resident entry (exact, but dependent on timing
    /// once entries can be evicted — use for observability, not tests).
    pub fn lookup_hits(&self) -> u64 {
        self.lookup_hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Distinct projection computations published (first-insert wins, so
    /// racing duplicate computations count once).
    pub fn computed(&self) -> u64 {
        self.computed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Entries evicted to honor the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Estimated resident bytes across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().expect("shard poisoned").bytes as u64).sum()
    }
}

impl Default for ProjectionCache {
    fn default() -> Self {
        ProjectionCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::modes::infer_modes;
    use argus_logic::parser::parse_program;
    use argus_sizerel::{infer_size_relations, InferOptions};

    /// Build the pair system for the paper's Example 3.1 (perm).
    fn perm_pair() -> RuleSubgoalSystem {
        let program = parse_program(
            "perm([], []).\n\
             perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
             append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        )
        .unwrap();
        let root = PredKey::new("perm", 2);
        let modes = infer_modes(&program, &root, Adornment::parse("bf").unwrap());
        let rels = infer_size_relations(&program, &InferOptions::default());
        // Rule index 1 (the recursive perm rule), subgoal index 2 (perm).
        build_pair(&program.rules[1], 1, 2, &modes, &rels)
    }

    #[test]
    fn perm_shapes_match_paper() {
        let sys = perm_pair();
        // One bound head argument (P) and one bound subgoal argument (P1).
        assert_eq!(sys.x_rows.len(), 1);
        assert_eq!(sys.y_rows.len(), 1);
        // x = P: constant 0, single coefficient 1.
        assert!(sys.x_rows[0].constant_term().is_zero());
        assert_eq!(sys.x_rows[0].terms().count(), 1);
        // y = P1 similarly.
        assert!(sys.y_rows[0].constant_term().is_zero());
        // Two imported append constraints (both equalities, no slack).
        assert_eq!(sys.c_rows.len(), 2, "rows: {:?}", sys.c_rows);
        // First append constraint E + (2 + X + F) - P = 0 has constant 2.
        let constants: Vec<i64> = sys
            .c_rows
            .iter()
            .map(|r| r.constant_term().numer().to_i128().unwrap() as i64)
            .collect();
        assert!(constants.contains(&2), "expected the paper's c = (2, 0): {constants:?}");
        assert!(constants.contains(&0));
        assert!(!sys.forces_zero_delta(), "perm pair has nonzero c");
    }

    #[test]
    fn merge_pair_has_empty_c() {
        // Example 5.1: "The matrices c and C are empty because the subgoal
        // X =< Y does not supply any contribution."
        let program = parse_program(
            "merge([], Ys, Ys).\n\
             merge(Xs, [], Xs).\n\
             merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
             merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
        )
        .unwrap();
        let root = PredKey::new("merge", 3);
        let modes = infer_modes(&program, &root, Adornment::parse("bbf").unwrap());
        let rels = infer_size_relations(&program, &InferOptions::default());
        let sys = build_pair(&program.rules[2], 2, 1, &modes, &rels);
        assert!(sys.c_rows.is_empty());
        // Two bound head args: [X|Xs] has size 2 + X + Xs; [Y|Ys] likewise.
        assert_eq!(sys.x_rows.len(), 2);
        assert_eq!(sys.x_rows[0].constant_term(), &Rat::from_int(2));
        assert_eq!(sys.x_rows[1].constant_term(), &Rat::from_int(2));
        // y rows: [Y|Ys] (size 2 + …) and Xs (size 0 + Xs) — the paper's
        // b = (2, 0).
        assert_eq!(sys.y_rows.len(), 2);
        assert_eq!(sys.y_rows[0].constant_term(), &Rat::from_int(2));
        assert!(sys.y_rows[1].constant_term().is_zero());
        assert!(!sys.forces_zero_delta(), "a = (2,2) is nonzero");
    }

    #[test]
    fn negative_preceding_subgoal_is_discarded() {
        let program = parse_program(
            "p([X|Xs]) :- \\+ q(Xs), p(Xs).\n\
             q([]).",
        )
        .unwrap();
        let root = PredKey::new("p", 1);
        let modes = infer_modes(&program, &root, Adornment::parse("b").unwrap());
        let rels = infer_size_relations(&program, &InferOptions::default());
        let sys = build_pair(&program.rules[0], 0, 1, &modes, &rels);
        assert!(sys.c_rows.is_empty(), "negated q must contribute nothing");
    }

    #[test]
    fn inequality_imports_get_slacks() {
        // The parser example: t's constraint t1 >= 2 + t2 is an inequality,
        // so applying it introduces a slack variable.
        let program = parse_program(
            "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
             e(L, T) :- t(L, T).\n\
             t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
             t(L, T) :- n(L, T).\n\
             n(['('|A], T) :- e(A, [')'|T]).\n\
             n([L|T], T) :- z(L).",
        )
        .unwrap();
        let root = PredKey::new("e", 2);
        let modes = infer_modes(&program, &root, Adornment::parse("bf").unwrap());
        let rels = infer_size_relations(&program, &InferOptions::default());
        // Rule 0, recursive subgoal e at index 1; preceding subgoal t.
        let sys = build_pair(&program.rules[0], 0, 1, &modes, &rels);
        assert!(!sys.c_rows.is_empty());
        assert!(
            sys.alpha_names.iter().any(|n| n.starts_with("sigma")),
            "expected a slack from t's inequality constraint: {:?}",
            sys.alpha_names
        );
        // This pair (e,e) does not force delta to zero: c has the constant
        // 4 the paper derives.
        assert!(!sys.forces_zero_delta());
        // The pair for the t subgoal of the same rule has no preceding
        // subgoals and zero constants: it forces delta_et = 0 (§6.1).
        let sys_t = build_pair(&program.rules[0], 0, 0, &modes, &rels);
        assert!(sys_t.forces_zero_delta());
    }

    #[test]
    fn primal_system_is_satisfiable_for_real_rule() {
        let sys = perm_pair();
        let (primal, x_vars, y_vars, _) = primal_system(&sys);
        let nonneg: std::collections::BTreeSet<Var> = primal.vars().into_iter().collect();
        let pt = argus_linear::simplex::feasible_point(&primal, &nonneg)
            .expect("Eq.1 for perm must be satisfiable");
        assert!(primal.holds_at(&pt));
        // And the decrease x > y is witnessed in the primal: minimize x - y
        // must be >= 1 over the feasible region (this is what the dual
        // certifies with theta = 1/2 scaled... here theta fixed at 1).
        let mut obj = LinExpr::var(x_vars[0]);
        obj.add_term(y_vars[0], -Rat::one());
        let lp = argus_linear::LpProblem { objective: obj, constraints: primal, nonneg };
        match lp.solve() {
            argus_linear::LpOutcome::Optimal { value, .. } => {
                // x - y = P - P1 = 2 + X >= 2 by the append constraints.
                assert!(value >= Rat::from_int(2), "min(x - y) = {value}");
            }
            other => panic!("unexpected LP outcome: {other:?}"),
        }
    }
}
