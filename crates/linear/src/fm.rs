//! Fourier–Motzkin elimination.
//!
//! Given a conjunction of linear constraints, eliminate a variable `v` so
//! that the resulting system has exactly the satisfying assignments of the
//! original projected onto the remaining variables. Equalities mentioning
//! `v` are used as substitutions (Gaussian step); otherwise every pair of a
//! lower bound and an upper bound on `v` is combined.
//!
//! This is the engine behind the paper's reduction of the dual system
//! (its Eq. 8) down to constraints on the distinguished θ variables
//! (its Eq. 9), and behind polyhedron projection and convex hull in
//! [`crate::poly`].

use crate::expr::{Constraint, ConstraintSystem, LinExpr, Rel, Var};
use crate::rat::Rat;

/// Outcome of a Fourier–Motzkin elimination round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmResult {
    /// The projected system (the variable no longer occurs).
    Projected(ConstraintSystem),
    /// Elimination exposed a contradictory constant constraint: the input
    /// system is unsatisfiable.
    Infeasible,
}

impl FmResult {
    /// Unwrap the projected system, panicking on infeasibility.
    pub fn expect_projected(self) -> ConstraintSystem {
        match self {
            FmResult::Projected(s) => s,
            FmResult::Infeasible => panic!("system became infeasible during elimination"),
        }
    }

    /// The projected system, or `None` if infeasible.
    pub fn projected(self) -> Option<ConstraintSystem> {
        match self {
            FmResult::Projected(s) => Some(s),
            FmResult::Infeasible => None,
        }
    }
}

/// Eliminate a single variable from `sys` by Fourier–Motzkin.
///
/// The result mentions every variable of `sys` except `v` and is satisfiable
/// by exactly the projections of satisfying points of `sys`. Trivially true
/// rows are dropped; a trivially false row yields [`FmResult::Infeasible`].
pub fn eliminate(sys: &ConstraintSystem, v: Var) -> FmResult {
    eliminate_capped(sys, v, usize::MAX).expect("uncapped elimination cannot overflow")
}

/// Like [`eliminate`] but refuses (returning `None`) when the pairwise
/// combination step would produce more than `max_rows` rows.
pub fn eliminate_capped(sys: &ConstraintSystem, v: Var, max_rows: usize) -> Option<FmResult> {
    // Prefer a Gaussian step: if some equality mentions v, solve it for v
    // and substitute everywhere. This is exact and avoids row blowup.
    for (idx, c) in sys.constraints().iter().enumerate() {
        if c.rel == Rel::Eq {
            if let Some(coeff) = c.expr.coeff_ref(v) {
                // c.expr = coeff*v + rest = 0  =>  v = -rest / coeff
                let mut repl = c.expr.clone();
                repl.add_term(v, -coeff.clone());
                repl.scale(&-coeff.recip());
                let mut out = ConstraintSystem::new();
                for (j, other) in sys.constraints().iter().enumerate() {
                    if j == idx {
                        continue;
                    }
                    let s = other.substitute(v, &repl);
                    match s.constant_truth() {
                        Some(true) => continue,
                        Some(false) => return Some(FmResult::Infeasible),
                        None => out.push(s),
                    }
                }
                return Some(FmResult::Projected(out.dedup()));
            }
        }
    }

    // Pure inequality elimination. Partition rows by the sign of v's
    // coefficient. A row (a·v + rest <= 0) with a > 0 is an upper bound
    // v <= -rest/a; with a < 0 a lower bound.
    let mut uppers: Vec<(Rat, LinExpr)> = Vec::new(); // (a > 0, rest)
    let mut lowers: Vec<(Rat, LinExpr)> = Vec::new(); // (a < 0, rest)
    let mut kept = ConstraintSystem::new();

    for c in sys.constraints() {
        let Some(a) = c.expr.coeff_ref(v) else {
            // Rows (including equalities) not mentioning v pass through.
            match c.constant_truth() {
                Some(true) => continue,
                Some(false) => return Some(FmResult::Infeasible),
                None => kept.push(c.clone()),
            }
            continue;
        };
        debug_assert_ne!(c.rel, Rel::Eq, "equalities mentioning v handled by Gaussian step");
        let a = a.clone();
        let mut rest = c.expr.clone();
        rest.add_term(v, -a.clone());
        if a.is_positive() {
            uppers.push((a, rest));
        } else {
            lowers.push((a, rest));
        }
    }

    // Combine each (lower, upper) pair: from  a·v <= -ru (a>0)  and
    // b·v <= -rl (b<0):  v <= -ru/a  and  v >= -rl/b (dividing by b flips).
    // Requiring lower <= upper:  -rl/b <= -ru/a  <=>  a·rl ... careful with
    // signs; multiply through by a·(-b) > 0:
    //   (-b)·(-ru)  >=  a·(-rl) · (-1)?  Work it out directly:
    //   v >= rl' where rl' = -rl/b ; v <= ru' where ru' = -ru/a.
    //   rl' <= ru'  <=>  -rl/b <= -ru/a. Multiply by a(-b) > 0 (b<0):
    //   -rl * a * (-b)/b <= -ru * (-b)  <=>  a*rl <= b*ru ... simpler to just
    //   form: a*rl_expr_scaled etc. Use: combined = a*(rest_l) * ? —
    // Implemented concretely below with exact rationals.
    if kept
        .len()
        .checked_add(lowers.len().saturating_mul(uppers.len()))
        .map(|total| total > max_rows)
        .unwrap_or(true)
    {
        return None; // combination step would blow past the cap
    }
    let mut out = kept;
    // v <= (-ru)/a = ru * (-1/a): compute each upper bound once, not once
    // per (lower, upper) pair.
    let his: Vec<LinExpr> = uppers.iter().map(|(a, ru)| ru * &(-a.recip())).collect();
    for (b, rl) in &lowers {
        // v >= (-rl)/b with b < 0; scale: v >= rl * (-1/b)
        let lo = rl * &(-b.recip()); // lower bound expression for v
        for hi in &his {
            // lo <= hi  =>  lo - hi <= 0
            let row = Constraint { expr: &lo - hi, rel: Rel::Le };
            match row.constant_truth() {
                Some(true) => continue,
                Some(false) => return Some(FmResult::Infeasible),
                None => out.push(row),
            }
        }
    }
    Some(FmResult::Projected(out.dedup()))
}

/// Eliminate all variables in `vars` (in the given order) from `sys`.
pub fn eliminate_all(sys: &ConstraintSystem, vars: impl IntoIterator<Item = Var>) -> FmResult {
    let mut cur = sys.clone();
    for v in vars {
        match eliminate(&cur, v) {
            FmResult::Projected(next) => cur = next,
            FmResult::Infeasible => return FmResult::Infeasible,
        }
    }
    FmResult::Projected(cur)
}

/// Project `sys` onto `keep`: eliminate every variable not in `keep`.
/// Variables are eliminated in a greedy order that minimizes the product of
/// positive and negative occurrence counts at each step (a standard
/// heuristic that curbs FM's row blowup).
pub fn project_onto(sys: &ConstraintSystem, keep: &std::collections::BTreeSet<Var>) -> FmResult {
    project_onto_capped(sys, keep, usize::MAX).expect("uncapped projection cannot overflow")
}

/// Like [`project_onto`] but gives up (returning `None`) if any
/// intermediate system exceeds `max_rows` rows. Callers use this to bound
/// FM's worst-case doubly-exponential blowup and fall back to a sound
/// over-approximation.
pub fn project_onto_capped(
    sys: &ConstraintSystem,
    keep: &std::collections::BTreeSet<Var>,
    max_rows: usize,
) -> Option<FmResult> {
    let mut cur = sys.clone();
    loop {
        if cur.len() > max_rows {
            return None;
        }
        let to_go: Vec<Var> = cur.vars().into_iter().filter(|v| !keep.contains(v)).collect();
        if to_go.is_empty() {
            return Some(FmResult::Projected(cur));
        }
        // Pick the variable whose elimination creates the fewest new rows.
        let best = to_go
            .into_iter()
            .min_by_key(|&v| {
                let mut pos = 0usize;
                let mut neg = 0usize;
                let mut has_eq = false;
                for c in cur.constraints() {
                    let Some(a) = c.expr.coeff_ref(v) else {
                        continue;
                    };
                    if c.rel == Rel::Eq {
                        has_eq = true;
                    } else if a.is_positive() {
                        pos += 1;
                    } else {
                        neg += 1;
                    }
                }
                if has_eq {
                    0 // Gaussian elimination is always cheapest.
                } else {
                    pos * neg + 1
                }
            })
            .expect("nonempty");
        match eliminate_capped(&cur, best, max_rows)? {
            FmResult::Projected(next) => cur = next,
            FmResult::Infeasible => return Some(FmResult::Infeasible),
        }
    }
}

/// Decide satisfiability of `sys` (over the rationals, all variables free)
/// purely with Fourier–Motzkin. Intended for small systems and as a test
/// oracle for the simplex solver.
pub fn is_satisfiable_fm(sys: &ConstraintSystem) -> bool {
    let vars: Vec<Var> = sys.vars().into_iter().collect();
    match eliminate_all(sys, vars) {
        FmResult::Infeasible => false,
        FmResult::Projected(rest) => rest.simplify_trivial().is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    fn le(e: LinExpr, bound: i64) -> Constraint {
        Constraint::le(e, LinExpr::constant(r(bound, 1)))
    }

    #[test]
    fn box_projection() {
        // 0 <= x <= 1, 0 <= y <= 1, x + y <= 3/2; eliminate y.
        let x = 0;
        let y = 1;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::zero()));
        sys.push(le(LinExpr::var(x), 1));
        sys.push(Constraint::ge(LinExpr::var(y), LinExpr::zero()));
        sys.push(le(LinExpr::var(y), 1));
        sys.push(Constraint::le(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(3, 2))));
        let out = eliminate(&sys, y).expect_projected();
        // Projection is 0 <= x <= 1 (x + y <= 3/2 is subsumed for x <= 1).
        let mut p = std::collections::BTreeMap::new();
        p.insert(x, r(1, 1));
        assert!(out.holds_at(&p));
        p.insert(x, r(0, 1));
        assert!(out.holds_at(&p));
        p.insert(x, r(2, 1));
        assert!(!out.holds_at(&p));
        assert!(!out.vars().contains(&y));
    }

    #[test]
    fn gaussian_step_for_equalities() {
        // x = y + 1, x <= 3 => after eliminating x: y <= 2.
        let x = 0;
        let y = 1;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(LinExpr::var(x), &LinExpr::var(y) + &LinExpr::constant(r(1, 1))));
        sys.push(le(LinExpr::var(x), 3));
        let out = eliminate(&sys, x).expect_projected();
        let mut p = std::collections::BTreeMap::new();
        p.insert(y, r(2, 1));
        assert!(out.holds_at(&p));
        p.insert(y, r(5, 2));
        assert!(!out.holds_at(&p));
    }

    #[test]
    fn detects_infeasibility() {
        // x >= 2 and x <= 1.
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::constant(r(2, 1))));
        sys.push(le(LinExpr::var(x), 1));
        assert_eq!(eliminate(&sys, x), FmResult::Infeasible);
        assert!(!is_satisfiable_fm(&sys));
    }

    #[test]
    fn unconstrained_var_elimination_drops_rows() {
        // x free with only a lower bound: eliminating x keeps nothing
        // involving x, but unrelated constraints survive.
        let x = 0;
        let y = 1;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::var(y)));
        sys.push(le(LinExpr::var(y), 7));
        let out = eliminate(&sys, x).expect_projected();
        assert_eq!(out.len(), 1);
        assert!(!out.vars().contains(&x));
    }

    #[test]
    fn project_onto_keeps_requested_vars() {
        // x <= y, y <= z, project onto {x, z} => x <= z.
        let (x, y, z) = (0, 1, 2);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::var(y)));
        sys.push(Constraint::le(LinExpr::var(y), LinExpr::var(z)));
        let keep: BTreeSet<Var> = [x, z].into_iter().collect();
        let out = project_onto(&sys, &keep).expect_projected();
        let mut p = std::collections::BTreeMap::new();
        p.insert(x, r(1, 1));
        p.insert(z, r(2, 1));
        assert!(out.holds_at(&p));
        p.insert(z, r(0, 1));
        assert!(!out.holds_at(&p));
    }

    #[test]
    fn satisfiable_system_with_equalities() {
        // x + y = 1, x >= 0, y >= 0 is satisfiable.
        let (x, y) = (0, 1);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::nonneg(x));
        sys.push(Constraint::nonneg(y));
        assert!(is_satisfiable_fm(&sys));
        // Adding x + y = 2 makes it unsatisfiable.
        let mut bad = sys.clone();
        bad.push(Constraint::eq(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(2, 1))));
        assert!(!is_satisfiable_fm(&bad));
    }

    #[test]
    fn paper_perm_reduction_shape() {
        // A miniature of the paper's Example 4.1 final step: the system
        //   2*theta >= delta, theta >= 0, with delta = 1
        // is satisfiable (theta = 1/2).
        let theta = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::term(theta, r(2, 1)), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::nonneg(theta));
        assert!(is_satisfiable_fm(&sys));
    }
}
