//! Structural lint passes: L001–L006.
//!
//! These need only the parsed program (plus the source text for sub-atom
//! spans); none of them depend on a query adornment.

use crate::{Diagnostic, LintContext, LintPass, Severity};
use argus_logic::modes::is_builtin;
use argus_logic::parser::variable_spans;
use argus_logic::span::Span;
use argus_logic::{PredKey, Rule, Sym};
use std::collections::{BTreeMap, BTreeSet};

/// L001: a named variable occurring exactly once in its clause. Almost
/// always a typo (the classic `Xs`/`X` slip); intentional one-shot
/// variables should be written `_` or `_Name`.
pub struct SingletonVariables;

impl LintPass for SingletonVariables {
    fn name(&self) -> &'static str {
        "singleton-variables"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        // Lexer-level occurrences give per-occurrence spans; bucket them
        // into clauses by rule span.
        let occurrences = variable_spans(ctx.src);
        for rule in &ctx.program.rules {
            let Some(rule_span) = rule.span.get() else { continue };
            let in_rule: Vec<&(String, Span)> =
                occurrences.iter().filter(|(_, s)| s.within(&rule_span)).collect();
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for (name, _) in &in_rule {
                *counts.entry(name.as_str()).or_insert(0) += 1;
            }
            for (name, span) in &in_rule {
                if counts[name.as_str()] == 1 && !name.starts_with('_') {
                    out.push(
                        Diagnostic::new(
                            "L001",
                            Severity::Warning,
                            Some(*span),
                            format!("singleton variable `{name}`"),
                        )
                        .with_note(
                            "a variable used once binds nothing; name it `_` (or `_Name`) \
                             if intentional",
                        ),
                    );
                }
            }
        }
    }
}

/// L002: a body goal calls a predicate with no clauses (and which is not a
/// builtin). Top-down it just fails; for the termination analysis its SCC
/// simply never decreases anything.
pub struct UndefinedPredicates;

impl LintPass for UndefinedPredicates {
    fn name(&self) -> &'static str {
        "undefined-predicates"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let idb = ctx.program.idb_predicates();
        let defined: Vec<PredKey> = idb.iter().cloned().collect();
        for rule in &ctx.program.rules {
            for lit in &rule.body {
                let key = lit.atom.key();
                if idb.contains(&key) || is_builtin(&key) {
                    continue;
                }
                let span = lit.atom.span.get().or_else(|| rule.span.get());
                out.push(Diagnostic::new(
                    "L002",
                    Severity::Error,
                    span,
                    format!("call to undefined predicate {key}"),
                ));
                // L005 piggybacks on the undefined-call scan: a defined
                // predicate of the same arity one edit away is almost
                // certainly what was meant.
                if let Some(candidate) = best_typo_candidate(&key, &defined) {
                    out.push(
                        Diagnostic::new(
                            "L005",
                            Severity::Warning,
                            span,
                            format!("`{}` looks like a typo", key.name),
                        )
                        .with_note(format!("did you mean `{}`?", candidate.name)),
                    );
                }
            }
        }
    }
}

/// The unique defined predicate with the same arity within Damerau-
/// Levenshtein distance 1 of `key`, if any.
pub fn best_typo_candidate<'a>(key: &PredKey, defined: &'a [PredKey]) -> Option<&'a PredKey> {
    let mut hits =
        defined.iter().filter(|d| d.arity == key.arity && osa_distance(&d.name, &key.name) == 1);
    let first = hits.next()?;
    // Ambiguous suggestions help nobody.
    if hits.next().is_some() {
        return None;
    }
    Some(first)
}

/// Optimal-string-alignment edit distance (Levenshtein + adjacent
/// transposition) — catches `lenght`/`length`-style slips at distance 1.
fn osa_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return n.max(m);
    }
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            d[i][j] = (d[i - 1][j] + 1).min(d[i][j - 1] + 1).min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d[i][j] = d[i][j].min(d[i - 2][j - 2] + 1);
            }
        }
    }
    d[n][m]
}

/// L003: a defined predicate that nothing uses. With a query, "used" means
/// reachable from the query predicate through positive or negative body
/// goals; without one, it means appearing in some body (entry points named
/// `main` are exempt).
pub struct UnusedPredicates;

impl LintPass for UnusedPredicates {
    fn name(&self) -> &'static str {
        "unused-predicates"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let idb = ctx.program.idb_predicates();
        let live: BTreeSet<PredKey> = match ctx.query {
            Some((root, _)) => reachable_from(ctx, root),
            None => {
                let mut used: BTreeSet<PredKey> = ctx
                    .program
                    .rules
                    .iter()
                    .flat_map(|r| r.body.iter().map(|l| l.atom.key()))
                    .collect();
                used.extend(idb.iter().filter(|p| &*p.name == "main").cloned());
                used
            }
        };
        for pred in &idb {
            if live.contains(pred) {
                continue;
            }
            let span = first_head_span(ctx.program.procedure(pred).first().copied());
            let how = match ctx.query {
                Some((root, _)) => format!("not reachable from {root}"),
                None => "never called".to_string(),
            };
            out.push(Diagnostic::new(
                "L003",
                Severity::Warning,
                span,
                format!("predicate {pred} is unused ({how})"),
            ));
        }
    }
}

fn reachable_from(ctx: &LintContext<'_>, root: &PredKey) -> BTreeSet<PredKey> {
    let mut seen: BTreeSet<PredKey> = BTreeSet::new();
    let mut work = vec![root.clone()];
    while let Some(p) = work.pop() {
        if !seen.insert(p.clone()) {
            continue;
        }
        for rule in ctx.program.procedure(&p) {
            for lit in &rule.body {
                let k = lit.atom.key();
                if !seen.contains(&k) {
                    work.push(k);
                }
            }
        }
    }
    seen
}

fn first_head_span(rule: Option<&Rule>) -> Option<Span> {
    let rule = rule?;
    rule.head.span.get().or_else(|| rule.span.get())
}

/// L004: one name used with several arities. Legal (predicates are keyed
/// by name *and* arity) but, in a program that also fails to prove
/// something, overwhelmingly a forgotten argument.
pub struct ArityMismatch;

impl LintPass for ArityMismatch {
    fn name(&self) -> &'static str {
        "arity-mismatch"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        // Count occurrences (heads + body goals) of each (name, arity).
        let mut by_name: BTreeMap<Sym, BTreeMap<usize, usize>> = BTreeMap::new();
        let mut record = |name: Sym, arity: usize| {
            *by_name.entry(name).or_default().entry(arity).or_insert(0) += 1;
        };
        for rule in &ctx.program.rules {
            record(rule.head.name, rule.head.args.len());
            for lit in &rule.body {
                record(lit.atom.name, lit.atom.args.len());
            }
        }
        // Flag occurrences of every arity other than the majority one.
        for rule in &ctx.program.rules {
            let heads = std::iter::once((&rule.head, rule.span.get()));
            let goals = rule.body.iter().map(|l| (&l.atom, l.span.get()));
            for (atom, fallback) in heads.chain(goals) {
                if is_builtin(&atom.key()) {
                    continue;
                }
                let arities = &by_name[&atom.name];
                if arities.len() < 2 {
                    continue;
                }
                let majority = arities
                    .iter()
                    .max_by_key(|(arity, count)| (**count, std::cmp::Reverse(**arity)))
                    .map(|(a, _)| *a)
                    .unwrap();
                let here = atom.args.len();
                if here != majority {
                    out.push(
                        Diagnostic::new(
                            "L004",
                            Severity::Warning,
                            atom.span.get().or(fallback),
                            format!(
                                "`{}` is used with arity {here} here but with arity \
                                 {majority} elsewhere",
                                atom.name
                            ),
                        )
                        .with_note(
                            "predicates are keyed by name AND arity; these are \
                             different predicates",
                        ),
                    );
                }
            }
        }
    }
}

/// L006: a clause whose head mentions a variable that no positive body
/// goal mentions. Such clauses derive non-ground facts: bottom-up (magic)
/// evaluation may not terminate on them and the size-relation inference
/// treats the unconstrained argument as unbounded.
pub struct RangeRestriction;

impl LintPass for RangeRestriction {
    fn name(&self) -> &'static str {
        "range-restriction"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for rule in &ctx.program.rules {
            let positive_vars: BTreeSet<Sym> =
                rule.body.iter().filter(|l| l.positive).flat_map(|l| l.atom.vars()).collect();
            let loose: Vec<String> = rule
                .head
                .vars()
                .into_iter()
                .filter(|v| !positive_vars.contains(v) && !v.starts_with('_'))
                .map(|v| format!("`{v}`"))
                .collect();
            if loose.is_empty() {
                continue;
            }
            out.push(
                Diagnostic::new(
                    "L006",
                    Severity::Note,
                    rule.head.span.get().or_else(|| rule.span.get()),
                    format!(
                        "clause is not range-restricted: head variable{} {} {} in no \
                         positive body goal",
                        if loose.len() == 1 { "" } else { "s" },
                        loose.join(", "),
                        if loose.len() == 1 { "occurs" } else { "occur" },
                    ),
                )
                .with_note("bottom-up evaluation derives non-ground facts from such clauses"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, LintOptions};
    use argus_logic::modes::Adornment;

    fn codes(src: &str) -> Vec<&'static str> {
        lint_source(src, &LintOptions::default()).iter().map(|d| d.code).collect()
    }

    #[test]
    fn singleton_variable_found_with_span() {
        let src = "main(Xs) :- length(Xs, Len).\nlength([], 0).\nlength([_|T], N) :- length(T, M), N is M + 1.\n";
        let diags = lint_source(src, &LintOptions::default());
        let l001: Vec<_> = diags.iter().filter(|d| d.code == "L001").collect();
        assert_eq!(l001.len(), 1, "{diags:?}");
        assert!(l001[0].message.contains("`Len`"));
        assert_eq!(l001[0].span.unwrap().slice(src), Some("Len"));
    }

    #[test]
    fn underscore_variables_are_not_singletons() {
        let src = "p(_, _Ignored, X) :- q(X).\nq(a).\n";
        assert!(!codes(src).contains(&"L001"), "{:?}", codes(src));
    }

    #[test]
    fn undefined_predicate_found() {
        let src = "main(X) :- missing(X).\n";
        let diags = lint_source(src, &LintOptions::default());
        let d = diags.iter().find(|d| d.code == "L002").expect("L002");
        assert!(d.message.contains("missing/1"));
        assert_eq!(d.span.unwrap().slice(src), Some("missing(X)"));
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn typo_suggestion_at_distance_one() {
        // Transposition: lenght -> length (OSA distance 1).
        let src = "main(Xs, N) :- lenght(Xs, N).\n\
                   length([], 0).\nlength([_|T], N) :- length(T, M), N is M + 1.\n";
        let diags = lint_source(src, &LintOptions::default());
        let d = diags.iter().find(|d| d.code == "L005").expect("L005");
        assert!(d.notes.iter().any(|n| n.contains("length")), "{diags:?}");
    }

    #[test]
    fn osa_distance_handles_transpositions() {
        assert_eq!(osa_distance("lenght", "length"), 1);
        assert_eq!(osa_distance("append", "append"), 0);
        assert_eq!(osa_distance("mebmer", "member"), 1);
        assert_eq!(osa_distance("ab", "ba"), 1);
        assert_eq!(osa_distance("abc", "cab"), 2);
    }

    #[test]
    fn unused_predicate_without_query() {
        let src = "main(X) :- used(X).\nused(a).\norphan(b).\n";
        let diags = lint_source(src, &LintOptions::default());
        let d = diags.iter().find(|d| d.code == "L003").expect("L003");
        assert!(d.message.contains("orphan/1"));
        assert_eq!(d.span.unwrap().slice(src), Some("orphan(b)"));
    }

    #[test]
    fn unused_predicate_by_reachability() {
        let src = "entry(X) :- used(X).\nused(a).\nother(b).\n";
        let options = LintOptions {
            query: Some((argus_logic::PredKey::new("entry", 1), Adornment::parse("b").unwrap())),
        };
        let diags = lint_source(src, &options);
        let unused: Vec<_> =
            diags.iter().filter(|d| d.code == "L003").map(|d| d.message.clone()).collect();
        assert_eq!(unused.len(), 1, "{diags:?}");
        assert!(unused[0].contains("other/1"));
    }

    #[test]
    fn arity_mismatch_flags_minority_use() {
        let src = "main(Xs) :- length(Xs), length(Xs, _).\n\
                   length([], 0).\nlength([_|T], N) :- length(T, M), N is M + 1.\n";
        let diags = lint_source(src, &LintOptions::default());
        let d = diags.iter().find(|d| d.code == "L004").expect("L004");
        assert!(d.message.contains("arity 1"), "{}", d.message);
        assert_eq!(d.span.unwrap().slice(src), Some("length(Xs)"));
    }

    #[test]
    fn range_restriction_flags_non_ground_fact() {
        let src = "pair(X, 7).\nmain(Y) :- pair(Y, Z), use(Z).\nuse(_).\n";
        let diags = lint_source(src, &LintOptions::default());
        let d = diags.iter().find(|d| d.code == "L006").expect("L006");
        assert!(d.message.contains("`X`"), "{}", d.message);
        assert_eq!(d.span.unwrap().slice(src), Some("pair(X, 7)"));
    }

    #[test]
    fn range_restriction_ok_for_chained_vars() {
        let src = "main(Y) :- gen(Y).\ngen([]).\n";
        assert!(!codes(src).contains(&"L006"));
    }
}
