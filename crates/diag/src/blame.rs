//! Termination-blame lints: L009 and L010.
//!
//! When the θ-search fails for an SCC, the analyzer's bare "not proved"
//! hides *which recursive call* defeats every argument-size measure. This
//! pass reruns the termination analysis (preprocessing disabled, so rule
//! spans survive untransformed) and surfaces the failure explanation as
//! ordinary diagnostics:
//!
//! * **L010** — a zero-weight recursion cycle (§6.1 step 3): strong
//!   evidence of actual nontermination, reported at the first recursive
//!   rule of the cycle;
//! * **L009** — no linear decrease: the [`PairBlame`] isolated by the
//!   analyzer points at the recursive call whose size constraints admit no
//!   decreasing measure (alone, or in conjunction with its siblings).
//!
//! Both need a query ([`crate::LintOptions::query`]); without one the pass
//! is silent.

use crate::{Diagnostic, LintContext, LintPass, Severity};
use argus_core::{analyze_with_caches, AnalysisOptions, SccOutcome};
use argus_logic::span::Span;
use argus_logic::PredKey;

/// Surfaces termination-analysis failures (L009/L010) as lints.
pub struct TerminationBlame;

/// Span of the first parsed recursive rule whose head is in `members`.
fn cycle_span(ctx: &LintContext<'_>, members: &[PredKey]) -> Option<Span> {
    ctx.program
        .rules
        .iter()
        .filter(|r| members.contains(&r.head.key()))
        .filter(|r| r.body.iter().any(|l| members.contains(&l.atom.key())))
        .find_map(|r| r.head.span.get().or_else(|| r.span.get()))
}

impl LintPass for TerminationBlame {
    fn name(&self) -> &'static str {
        "termination-blame"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some((root, adornment)) = ctx.query else { return };
        if !ctx.program.idb_predicates().contains(root) {
            return; // L002 already covers the undefined query
        }
        // Preprocessing rewrites rules (losing their source spans), so run
        // the analysis on the program exactly as written.
        let options = AnalysisOptions {
            transform_phases: 0,
            parallelism: ctx.jobs,
            ..AnalysisOptions::default()
        };
        let report = analyze_with_caches(
            ctx.program,
            root,
            adornment.clone(),
            &options,
            None,
            ctx.memo.as_deref(),
        );
        ctx.record_incremental(report.incremental);
        for scc in &report.sccs {
            match &scc.outcome {
                SccOutcome::ZeroWeightCycle(cycle) => {
                    let names: Vec<String> = cycle.iter().map(|p| p.to_string()).collect();
                    out.push(
                        Diagnostic::new(
                            "L010",
                            Severity::Warning,
                            cycle_span(ctx, cycle),
                            format!("zero-weight recursion cycle through {}", names.join(" -> ")),
                        )
                        .with_note(
                            "every step of this cycle can keep all bound argument sizes \
                             unchanged, so no argument-size measure decreases: strong \
                             evidence of nontermination",
                        ),
                    );
                }
                SccOutcome::NoLinearDecrease { refutation } => {
                    let (span, message) = match &scc.blame {
                        Some(blame) => (blame.subgoal_span(), blame.describe()),
                        None => {
                            let names: Vec<String> =
                                scc.members.iter().map(|p| p.to_string()).collect();
                            (
                                cycle_span(ctx, &scc.members),
                                format!(
                                    "no decreasing argument-size measure found for the \
                                     recursion through {}",
                                    names.join(", ")
                                ),
                            )
                        }
                    };
                    let mut d = Diagnostic::new("L009", Severity::Warning, span, message)
                        .with_note(
                            "no nonnegative linear combination of bound argument sizes \
                             decreases on every recursive call; termination is unproved \
                             (the method is sound, not complete)",
                        );
                    if refutation.is_some() {
                        d = d.with_note(
                            "the infeasibility is certified by a Farkas refutation \
                             (see `argus analyze` for the certificate)",
                        );
                    }
                    out.push(d);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::moded::parse_query_spec;
    use crate::{lint_source, LintOptions};

    fn options(spec: &str, adn: &str) -> LintOptions {
        LintOptions { query: Some(parse_query_spec(spec, adn).unwrap()) }
    }

    #[test]
    fn growing_recursion_is_l009_with_blame_span() {
        let src = "grow([], _).\ngrow([X|Xs], Ys) :- grow([X, X|Xs], Ys).\n";
        let diags = lint_source(src, &options("grow/2", "bf"));
        let d = diags.iter().find(|d| d.code == "L009").expect("L009");
        assert!(d.message.contains("grow"), "{}", d.message);
        let span = d.span.expect("blame span");
        assert_eq!(span.slice(src), Some("grow([X, X|Xs], Ys)"));
    }

    #[test]
    fn zero_weight_mutual_recursion_is_l010() {
        let src = "loop(X) :- hoop(X).\nhoop(X) :- loop(X).\nmain(X) :- loop(X).\n";
        let diags = lint_source(src, &options("main/1", "b"));
        let d = diags.iter().find(|d| d.code == "L010").expect("L010");
        assert!(d.message.contains("loop") && d.message.contains("hoop"), "{}", d.message);
        assert!(d.span.is_some());
    }

    #[test]
    fn terminating_program_has_no_blame_lints() {
        let src = "append([], Ys, Ys).\n\
                   append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n";
        let diags = lint_source(src, &options("append/3", "bbf"));
        assert!(!diags.iter().any(|d| d.code == "L009" || d.code == "L010"), "{diags:?}");
    }

    #[test]
    fn blame_lints_need_a_query() {
        let src = "grow([], _).\ngrow([X|Xs], Ys) :- grow([X, X|Xs], Ys).\n";
        let diags = lint_source(src, &LintOptions::default());
        assert!(!diags.iter().any(|d| d.code == "L009" || d.code == "L010"), "{diags:?}");
    }
}
