//! Bound–free adornments (modes) and their propagation.
//!
//! The paper assumes preprocessing has arranged that every predicate has the
//! same bound–free adornment in all its uses (§3). This module computes that
//! adornment map for a given query mode by abstract left-to-right execution:
//! starting from the root predicate's adornment, it marks the variables of
//! bound head arguments as bound, scans the body left to right (an argument
//! of a subgoal is bound iff all its variables are), and assumes that after
//! a positive subgoal succeeds all of its variables are bound (the standard
//! groundness assumption for well-moded programs). Negative subgoals bind
//! nothing (Appendix D: "negative subgoals do not produce variable
//! bindings").
//!
//! If a predicate is reached with different adornments, the analysis merges
//! them pointwise with *bound ⊓ free = free* (a conservative weakening) and
//! iterates to a fixpoint, so every predicate ends with a single adornment,
//! as the paper's setup requires.

use crate::intern::Sym;
use crate::program::{PredKey, ProcIndex, Program};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;
use std::sync::OnceLock;

/// The mode of one argument position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// Argument is bound (ground) when the predicate is invoked.
    Bound,
    /// Argument may be free.
    Free,
}

/// A bound–free adornment for a predicate: one [`Mode`] per argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment(pub Vec<Mode>);

impl Adornment {
    /// All arguments bound.
    pub fn all_bound(arity: usize) -> Adornment {
        Adornment(vec![Mode::Bound; arity])
    }

    /// All arguments free.
    pub fn all_free(arity: usize) -> Adornment {
        Adornment(vec![Mode::Free; arity])
    }

    /// Parse from a string like `"bf"` (bound, free).
    pub fn parse(s: &str) -> Option<Adornment> {
        s.chars()
            .map(|c| match c {
                'b' => Some(Mode::Bound),
                'f' => Some(Mode::Free),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .map(Adornment)
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Indices of bound positions.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.0.iter().enumerate().filter(|(_, m)| **m == Mode::Bound).map(|(i, _)| i).collect()
    }

    /// Pointwise meet: bound only where both are bound.
    pub fn meet(&self, other: &Adornment) -> Adornment {
        debug_assert_eq!(self.arity(), other.arity());
        Adornment(
            self.0
                .iter()
                .zip(&other.0)
                .map(
                    |(a, b)| {
                        if *a == Mode::Bound && *b == Mode::Bound {
                            Mode::Bound
                        } else {
                            Mode::Free
                        }
                    },
                )
                .collect(),
        )
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.0 {
            write!(f, "{}", if *m == Mode::Bound { 'b' } else { 'f' })?;
        }
        Ok(())
    }
}

/// The inferred adornment of every reachable predicate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModeMap {
    map: BTreeMap<PredKey, Adornment>,
}

impl ModeMap {
    /// The adornment of `p`, if reachable.
    pub fn get(&self, p: &PredKey) -> Option<&Adornment> {
        self.map.get(p)
    }

    /// Insert/overwrite an adornment (used to seed analyses or test).
    pub fn insert(&mut self, p: PredKey, a: Adornment) {
        self.map.insert(p, a);
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&PredKey, &Adornment)> {
        self.map.iter()
    }

    /// Number of adorned predicates.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff nothing adorned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Builtin comparison predicates: they test bound terms and bind nothing.
pub const TEST_BUILTINS: &[&str] = &["<", ">", "=<", ">=", "==", "\\==", "\\="];

/// Builtins that bind: `=` unifies (binds both sides), `is` binds its left
/// argument.
pub const BINDING_BUILTINS: &[&str] = &["=", "is"];

/// The interned `is` operator.
pub(crate) fn sym_is() -> Sym {
    static S: OnceLock<Sym> = OnceLock::new();
    *S.get_or_init(|| Sym::new("is"))
}

/// The interned `=` operator.
pub(crate) fn sym_eq() -> Sym {
    static S: OnceLock<Sym> = OnceLock::new();
    *S.get_or_init(|| Sym::new("="))
}

/// The test builtins, interned once so the per-literal builtin check on
/// the fixpoint hot paths compares symbol ids instead of string bytes.
pub(crate) fn test_builtin_syms() -> &'static [Sym] {
    static S: OnceLock<Vec<Sym>> = OnceLock::new();
    S.get_or_init(|| TEST_BUILTINS.iter().map(Sym::new).collect())
}

/// Is `p` a builtin (not subject to rule lookup)?
pub fn is_builtin(p: &PredKey) -> bool {
    p.arity == 2
        && (test_builtin_syms().contains(&p.name) || p.name == sym_eq() || p.name == sym_is())
}

/// Propagate modes from `root` with `root_adornment` through `program`.
///
/// Returns the fixpoint adornment map. Predicates never reached do not
/// appear. EDB predicates get whatever adornment their call sites produce.
pub fn infer_modes(program: &Program, root: &PredKey, root_adornment: Adornment) -> ModeMap {
    assert_eq!(root.arity, root_adornment.arity(), "root adornment arity mismatch");
    let mut map: BTreeMap<PredKey, Adornment> = BTreeMap::new();
    let mut queue: VecDeque<PredKey> = VecDeque::new();
    map.insert(root.clone(), root_adornment);
    queue.push_back(root.clone());

    // Merge `a` into the entry for `p`; enqueue `p` if the entry weakened
    // (or is new).
    fn merge(
        map: &mut BTreeMap<PredKey, Adornment>,
        queue: &mut VecDeque<PredKey>,
        p: PredKey,
        a: Adornment,
    ) {
        match map.get(&p) {
            Some(old) => {
                let met = old.meet(&a);
                if &met != old {
                    map.insert(p.clone(), met);
                    queue.push_back(p);
                }
            }
            None => {
                map.insert(p.clone(), a);
                queue.push_back(p);
            }
        }
    }

    let index = ProcIndex::build(program);
    let mut bound_vars: HashSet<Sym> = HashSet::new();
    while let Some(pred) = queue.pop_front() {
        let adornment = map[&pred].clone();
        for rule in index.procedure(program, &pred) {
            // Variables bound by the head's bound arguments.
            bound_vars.clear();
            for (i, arg) in rule.head.args.iter().enumerate() {
                if adornment.0[i] == Mode::Bound {
                    arg.add_vars_to(&mut bound_vars);
                }
            }
            // Scan body left to right.
            for lit in &rule.body {
                let key = lit.atom.key();
                let sub_adornment =
                    Adornment(
                        lit.atom
                            .args
                            .iter()
                            .map(|t| {
                                if t.vars_subset_of(&bound_vars) {
                                    Mode::Bound
                                } else {
                                    Mode::Free
                                }
                            })
                            .collect(),
                    );
                if !is_builtin(&key) {
                    merge(&mut map, &mut queue, key.clone(), sub_adornment);
                }
                // Binding effect of the subgoal.
                if lit.positive {
                    if key.arity == 2 && test_builtin_syms().contains(&key.name) {
                        // Tests bind nothing.
                    } else if key.arity == 2 && key.name == sym_is() {
                        lit.atom.args[0].add_vars_to(&mut bound_vars);
                    } else {
                        // `=`, user predicates, EDB: assume success grounds
                        // every variable of the subgoal.
                        for a in &lit.atom.args {
                            a.add_vars_to(&mut bound_vars);
                        }
                    }
                }
                // Negative subgoals produce no bindings (Appendix D).
            }
        }
    }

    ModeMap { map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn adornment_parse_display() {
        let a = Adornment::parse("bf").unwrap();
        assert_eq!(a.to_string(), "bf");
        assert_eq!(a.bound_positions(), vec![0]);
        assert!(Adornment::parse("bx").is_none());
    }

    #[test]
    fn meet_is_pointwise() {
        let a = Adornment::parse("bb").unwrap();
        let b = Adornment::parse("bf").unwrap();
        assert_eq!(a.meet(&b), Adornment::parse("bf").unwrap());
    }

    #[test]
    fn perm_modes() {
        // Example 3.1: perm's first argument bound, second free. The
        // append subgoals: append(E, [X|F], P) has P bound, E and [X|F]
        // free at call time — adornment ffb. The second append(E, F, P1)
        // then has E, F bound (bound by first append), P1 free — bbf; the
        // merged adornment for append/3 is fff ⊓ ... = pointwise meet fff?
        // No: ffb ⊓ bbf = fff. The conservative meet weakens; what matters
        // for the analyzer is that perm/2 keeps its bf adornment and the
        // recursive call perm(P1, L) sees P1 bound.
        let p = parse_program(
            "perm([], []).\n\
             perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
             append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        )
        .unwrap();
        let root = PredKey::new("perm", 2);
        let modes = infer_modes(&p, &root, Adornment::parse("bf").unwrap());
        assert_eq!(modes.get(&root).unwrap().to_string(), "bf");
        // append is reached with both ffb and bbf; the meet is fff.
        let app = PredKey::new("append", 3);
        assert_eq!(modes.get(&app).unwrap().to_string(), "fff");
    }

    #[test]
    fn merge_modes_stay_bound() {
        let p = parse_program(
            "merge([], Ys, Ys).\n\
             merge(Xs, [], Xs).\n\
             merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
             merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
        )
        .unwrap();
        let root = PredKey::new("merge", 3);
        let modes = infer_modes(&p, &root, Adornment::parse("bbf").unwrap());
        // Recursive calls preserve bbf: both recursive subgoals pass bound
        // args in the first two positions, free Zs in the third.
        assert_eq!(modes.get(&root).unwrap().to_string(), "bbf");
    }

    #[test]
    fn parser_modes() {
        // Example 6.1: e/t/n with first argument bound. The recursive calls
        // pass bound first args (C is bound by the earlier subgoal).
        let p = parse_program(
            "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
             e(L, T) :- t(L, T).\n\
             t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
             t(L, T) :- n(L, T).\n\
             n(['('|A], T) :- e(A, [')'|T]).\n\
             n([L|T], T) :- z(L).",
        )
        .unwrap();
        let root = PredKey::new("e", 2);
        let modes = infer_modes(&p, &root, Adornment::parse("bf").unwrap());
        for name in ["e", "t", "n"] {
            assert_eq!(
                modes.get(&PredKey::new(name, 2)).unwrap().to_string(),
                "bf",
                "{name} should be bf"
            );
        }
        // z is called with its single argument bound... L is bound because
        // the head's first argument [L|T] is bound.
        assert_eq!(modes.get(&PredKey::new("z", 1)).unwrap().to_string(), "b");
    }

    #[test]
    fn negative_subgoal_binds_nothing() {
        let p = parse_program("p(X, Y) :- \\+ q(Y), r(X, Y).\nq(a).\nr(a, b).").unwrap();
        let root = PredKey::new("p", 2);
        let modes = infer_modes(&p, &root, Adornment::parse("bf").unwrap());
        // r is called with X bound, Y still free (the negation bound
        // nothing).
        assert_eq!(modes.get(&PredKey::new("r", 2)).unwrap().to_string(), "bf");
    }

    #[test]
    fn is_binds_lhs_only() {
        let p = parse_program("len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.").unwrap();
        let root = PredKey::new("len", 2);
        let modes = infer_modes(&p, &root, Adornment::parse("bf").unwrap());
        assert_eq!(modes.get(&root).unwrap().to_string(), "bf");
        assert!(modes.get(&PredKey::new("is", 2)).is_none(), "builtins are not adorned");
    }

    #[test]
    fn zero_arity_subgoals_get_empty_adornments() {
        let p = parse_program(
            "go :- init, \\+ stopped, run(X), check(X).\n\
             init.\nstopped.\nrun(a).\ncheck(a).",
        )
        .unwrap();
        let root = PredKey::new("go", 0);
        let modes = infer_modes(&p, &root, Adornment(vec![]));
        assert_eq!(modes.get(&root), Some(&Adornment(vec![])));
        assert_eq!(modes.get(&PredKey::new("init", 0)), Some(&Adornment(vec![])));
        // Negated zero-arity goals are adorned too — with no positions.
        assert_eq!(modes.get(&PredKey::new("stopped", 0)), Some(&Adornment(vec![])));
        // run/1 is reached with X free; check/1 sees X bound after run
        // succeeds.
        assert_eq!(modes.get(&PredKey::new("run", 1)).unwrap().to_string(), "f");
        assert_eq!(modes.get(&PredKey::new("check", 1)).unwrap().to_string(), "b");
    }

    #[test]
    fn negated_zero_arity_before_binding_goal() {
        // The negation contributes nothing, but the scan continues: q/1 is
        // still reached free and r/1 bound.
        let p = parse_program(
            "p(X) :- \\+ halt, q(Y), r(Y), s(X).\n\
                               halt.\nq(a).\nr(a).\ns(b).",
        )
        .unwrap();
        let modes = infer_modes(&p, &PredKey::new("p", 1), Adornment::parse("b").unwrap());
        assert_eq!(modes.get(&PredKey::new("q", 1)).unwrap().to_string(), "f");
        assert_eq!(modes.get(&PredKey::new("r", 1)).unwrap().to_string(), "b");
    }

    #[test]
    fn negated_goal_with_args_sees_bindings_but_binds_nothing() {
        // The negated q/2 is adorned with the bindings in scope at its
        // position (X bound, Y free), and contributes no bindings of its
        // own: r/1 on Y is still reached free.
        let p = parse_program("p(X) :- \\+ q(X, Y), r(Y).\nq(a, b).\nr(c).").unwrap();
        let modes = infer_modes(&p, &PredKey::new("p", 1), Adornment::parse("b").unwrap());
        assert_eq!(modes.get(&PredKey::new("q", 2)).unwrap().to_string(), "bf");
        assert_eq!(modes.get(&PredKey::new("r", 1)).unwrap().to_string(), "f");
    }

    #[test]
    fn builtin_detection() {
        assert!(is_builtin(&PredKey::new("=<", 2)));
        assert!(is_builtin(&PredKey::new("is", 2)));
        assert!(!is_builtin(&PredKey::new("append", 3)));
        assert!(!is_builtin(&PredKey::new("=<", 3)));
    }
}
