//! Content-Length framing for the LSP stdio transport.
//!
//! The base protocol is HTTP-ish without being HTTP: each message is a
//! block of `\r\n`-terminated header lines, a blank line, then exactly
//! `Content-Length` bytes of UTF-8 JSON. Unlike a socket server, a
//! language server shares its transport with nothing — one malformed
//! *header* means the byte stream can never be re-synchronized, while a
//! malformed *payload* of known length can be skipped and the stream
//! survives. [`FrameError::recoverable`] encodes exactly that split, and
//! the server's hostile-input policy follows it: oversized or garbage
//! payloads get a JSON-RPC error response, broken headers end the
//! session gracefully.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Bounds on what [`read_frame`] accepts.
#[derive(Debug, Clone)]
pub struct FrameLimits {
    /// Largest `Content-Length` honored. Larger payloads are drained (in
    /// bounded chunks, so memory stays flat) and reported as
    /// [`FrameError::TooLarge`].
    pub max_content_length: usize,
    /// Longest single header line accepted.
    pub max_header_bytes: usize,
}

impl Default for FrameLimits {
    fn default() -> FrameLimits {
        FrameLimits { max_content_length: 16 * 1024 * 1024, max_header_bytes: 4 * 1024 }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream at a frame boundary.
    Eof,
    /// Transport error.
    Io(io::Error),
    /// A header the stream cannot be re-synchronized past: a line without
    /// a colon, a missing or unparsable `Content-Length`, an over-long
    /// line, or EOF mid-frame.
    BadHeader(String),
    /// `Content-Length` exceeded [`FrameLimits::max_content_length`]. The
    /// declared bytes have been consumed, so the stream is still framed.
    TooLarge {
        /// The length the header declared.
        declared: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The payload was not valid UTF-8. The frame has been consumed.
    BadPayload(String),
}

impl FrameError {
    /// Can the connection keep serving after this error? True exactly
    /// when the erroneous frame was fully consumed, leaving the stream at
    /// the next frame boundary.
    pub fn recoverable(&self) -> bool {
        matches!(self, FrameError::TooLarge { .. } | FrameError::BadPayload(_))
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::BadHeader(m) => write!(f, "bad frame header: {m}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "Content-Length {declared} exceeds the limit of {max} bytes")
            }
            FrameError::BadPayload(m) => write!(f, "bad frame payload: {m}"),
        }
    }
}

/// Read one framed message, returning its JSON payload text.
pub fn read_frame(r: &mut impl BufRead, limits: &FrameLimits) -> Result<String, FrameError> {
    let mut content_length: Option<usize> = None;
    let mut first = true;
    loop {
        let mut line = Vec::new();
        let mut got = 0usize;
        // Bounded header read: stop a runaway (newline-free) header at the
        // limit instead of buffering it.
        loop {
            let available = r.fill_buf().map_err(FrameError::Io)?;
            if available.is_empty() {
                if first && line.is_empty() && got == 0 {
                    return Err(FrameError::Eof);
                }
                return Err(FrameError::BadHeader("unexpected end of stream".into()));
            }
            let take = available.len().min(limits.max_header_bytes + 2 - line.len());
            match available[..take].iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    line.extend_from_slice(&available[..nl]);
                    r.consume(nl + 1);
                    break;
                }
                None => {
                    line.extend_from_slice(&available[..take]);
                    r.consume(take);
                    got += take;
                    if line.len() > limits.max_header_bytes {
                        return Err(FrameError::BadHeader("header line too long".into()));
                    }
                }
            }
        }
        first = false;
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        if line.is_empty() {
            break; // end of headers
        }
        let text = std::str::from_utf8(&line)
            .map_err(|_| FrameError::BadHeader("header is not UTF-8".into()))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(FrameError::BadHeader(format!("header line without a colon: {text:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| FrameError::BadHeader(format!("bad Content-Length {value:?}")))?;
            content_length = Some(n);
        }
        // Other headers (Content-Type) are ignored, per the spec.
    }
    let Some(len) = content_length else {
        return Err(FrameError::BadHeader("missing Content-Length".into()));
    };
    if len > limits.max_content_length {
        // Drain the declared bytes in bounded chunks so the next frame
        // starts clean without ever holding the payload in memory.
        let mut remaining = len;
        let mut chunk = [0u8; 64 * 1024];
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            if let Err(e) = io::Read::read_exact(r, &mut chunk[..take]) {
                return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                    FrameError::BadHeader("unexpected end of stream in payload".into())
                } else {
                    FrameError::Io(e)
                });
            }
            remaining -= take;
        }
        return Err(FrameError::TooLarge { declared: len, max: limits.max_content_length });
    }
    let mut payload = vec![0u8; len];
    if let Err(e) = io::Read::read_exact(r, &mut payload) {
        return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::BadHeader("unexpected end of stream in payload".into())
        } else {
            FrameError::Io(e)
        });
    }
    String::from_utf8(payload).map_err(|e| FrameError::BadPayload(e.to_string()))
}

/// Write one framed message.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    write!(w, "Content-Length: {}\r\n\r\n{payload}", payload.len())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(bytes: &[u8], limits: &FrameLimits) -> Result<String, FrameError> {
        read_frame(&mut BufReader::new(bytes), limits)
    }

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "{\"x\":1}").unwrap();
        write_frame(&mut wire, "[]").unwrap();
        let mut r = BufReader::new(wire.as_slice());
        let limits = FrameLimits::default();
        assert_eq!(read_frame(&mut r, &limits).unwrap(), "{\"x\":1}");
        assert_eq!(read_frame(&mut r, &limits).unwrap(), "[]");
        assert!(matches!(read_frame(&mut r, &limits), Err(FrameError::Eof)));
    }

    #[test]
    fn content_type_headers_are_ignored() {
        let wire = b"Content-Type: application/vscode-jsonrpc\r\n\
                     Content-Length: 2\r\n\r\n{}";
        assert_eq!(read(wire, &FrameLimits::default()).unwrap(), "{}");
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let wire = b"Content-Length: 4\n\ntrue";
        assert_eq!(read(wire, &FrameLimits::default()).unwrap(), "true");
    }

    #[test]
    fn oversized_content_length_is_drained_and_recoverable() {
        let limits = FrameLimits { max_content_length: 8, ..FrameLimits::default() };
        let mut wire = Vec::new();
        wire.extend_from_slice(b"Content-Length: 20\r\n\r\n");
        wire.extend_from_slice(&[b'x'; 20]);
        wire.extend_from_slice(b"Content-Length: 2\r\n\r\n{}");
        let mut r = BufReader::new(wire.as_slice());
        let err = read_frame(&mut r, &limits).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { declared: 20, max: 8 }), "{err}");
        assert!(err.recoverable());
        // The oversized payload was skipped: the next frame still parses.
        assert_eq!(read_frame(&mut r, &limits).unwrap(), "{}");
    }

    #[test]
    fn truncated_header_is_fatal() {
        let err = read(b"Content-Length: 10\r\n", &FrameLimits::default()).unwrap_err();
        assert!(matches!(err, FrameError::BadHeader(_)), "{err}");
        assert!(!err.recoverable());
        let err = read(b"Content-Length: 10\r\n\r\nhi", &FrameLimits::default()).unwrap_err();
        assert!(matches!(err, FrameError::BadHeader(_)), "{err}");
    }

    #[test]
    fn missing_or_malformed_lengths_are_fatal() {
        for wire in [&b"\r\n{}"[..], b"Content-Length: banana\r\n\r\n{}", b"no colon here\r\n\r\n"]
        {
            let err = read(wire, &FrameLimits::default()).unwrap_err();
            assert!(matches!(err, FrameError::BadHeader(_)), "{err}");
        }
    }

    #[test]
    fn runaway_header_is_bounded() {
        let limits = FrameLimits { max_header_bytes: 64, ..FrameLimits::default() };
        let wire = vec![b'a'; 1024];
        let err = read(&wire, &limits).unwrap_err();
        assert!(matches!(err, FrameError::BadHeader(_)), "{err}");
    }

    #[test]
    fn non_utf8_payload_is_recoverable() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"Content-Length: 2\r\n\r\n\xff\xfe");
        wire.extend_from_slice(b"Content-Length: 2\r\n\r\n{}");
        let mut r = BufReader::new(wire.as_slice());
        let limits = FrameLimits::default();
        let err = read_frame(&mut r, &limits).unwrap_err();
        assert!(matches!(err, FrameError::BadPayload(_)), "{err}");
        assert!(err.recoverable());
        assert_eq!(read_frame(&mut r, &limits).unwrap(), "{}");
    }
}
