//! End-to-end tests of `argus serve` over real sockets.
//!
//! Every test spawns a [`ServerHandle`] on an ephemeral port and talks to
//! it through the zero-dependency HTTP client, so the full stack — accept
//! loop, worker pool, request parser, dispatch, caches, drain — is under
//! test, not just the in-process `ServerState::handle` dispatch layer the
//! unit tests cover.

use argus::prelude::*;
use argus::serve::client::{request_once, HttpClient};
use argus::serve::jsonval::json_str;
use argus::serve::{Limits, ServeOptions, ServerHandle, ServerState};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn spawn(options: ServeOptions) -> ServerHandle {
    let options = ServeOptions { addr: "127.0.0.1:0".to_string(), ..options };
    argus::serve::Server::spawn(Arc::new(ServerState::new(options))).expect("bind ephemeral port")
}

fn analyze_body(entry: &argus::corpus::CorpusEntry) -> Vec<u8> {
    format!(
        "{{\"program\":{},\"query\":{},\"adornment\":{}}}",
        json_str(entry.source),
        json_str(entry.query),
        json_str(entry.adornment)
    )
    .into_bytes()
}

fn expected_report(entry: &argus::corpus::CorpusEntry) -> String {
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    let options = AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() };
    format!("{}\n", analyze(&program, &query, adornment, &options).to_json())
}

/// The acceptance bar of the subsystem: for every corpus program, the
/// server's `/v1/analyze` response is byte-identical to `argus analyze
/// --json` — on the cold (computed) request AND on the warm (cached)
/// repeat, with the `x-argus-cache` header naming which path answered.
#[test]
fn corpus_byte_identity_cold_and_warm() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    let mut client = HttpClient::connect(&addr, TIMEOUT).unwrap();
    for entry in argus::corpus::corpus() {
        let body = analyze_body(&entry);
        let expected = expected_report(&entry);
        let cold = client.request("POST", "/v1/analyze", &body).unwrap();
        assert_eq!(cold.status, 200, "{}: cold status", entry.name);
        assert_eq!(cold.header("x-argus-cache"), Some("miss"), "{}", entry.name);
        assert_eq!(
            String::from_utf8_lossy(&cold.body),
            expected,
            "{}: cold body diverges from the CLI report",
            entry.name
        );
        let warm = client.request("POST", "/v1/analyze", &body).unwrap();
        assert_eq!(warm.status, 200, "{}: warm status", entry.name);
        assert_eq!(warm.header("x-argus-cache"), Some("hit"), "{}", entry.name);
        assert_eq!(warm.body, cold.body, "{}: warm body differs from cold", entry.name);
    }
    server.shutdown().unwrap();
}

/// The golden `analyze` snapshots pin the CLI's JSON bytes; the server
/// must serve exactly those bytes (plus the trailing newline the CLI
/// prints) for the same programs.
#[test]
fn served_reports_match_golden_snapshots() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    for name in ["append_bff", "perm", "loop_mutual"] {
        let golden = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join(format!("tests/golden/analyze/{name}.json")),
        )
        .expect("golden file");
        let entry = argus::corpus::find(name).expect(name);
        let resp =
            request_once(&addr, "POST", "/v1/analyze", &analyze_body(&entry), TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "{name}");
        assert_eq!(String::from_utf8_lossy(&resp.body), format!("{golden}\n"), "{name}");
    }
    server.shutdown().unwrap();
}

/// Oversized bodies are refused before the body is read, and the 413
/// error echoes both the configured limit and the declared length so
/// clients can right-size without consulting server config.
#[test]
fn oversized_body_is_413_with_limit_echoed() {
    let limits = Limits { max_body_bytes: 4096, ..Limits::default() };
    let server = spawn(ServeOptions { limits, ..ServeOptions::default() });
    let addr = server.addr.to_string();
    let big = vec![b'x'; 8192];
    let resp = request_once(&addr, "POST", "/v1/analyze", &big, TIMEOUT).unwrap();
    assert_eq!(resp.status, 413);
    let text = String::from_utf8_lossy(&resp.body).to_string();
    assert!(text.contains("\"limit\":4096"), "{text}");
    assert!(text.contains("\"declared\":8192"), "{text}");
    assert!(text.contains("4096-byte limit"), "{text}");
    server.shutdown().unwrap();
}

/// Malformed JSON gets a 400 whose embedded diagnostic carries a caret
/// marking the offending byte, same renderer as `argus lint`.
#[test]
fn malformed_json_is_400_with_caret_diagnostic() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    let resp = request_once(&addr, "POST", "/v1/analyze", b"{\"program\": tru", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    let text = String::from_utf8_lossy(&resp.body).to_string();
    assert!(text.contains("S001"), "{text}");
    assert!(text.contains('^'), "missing caret in {text}");
    server.shutdown().unwrap();
}

/// Bodies that are not UTF-8 are rejected with the dedicated S002
/// diagnostic, not a panic or a generic parse error.
#[test]
fn invalid_utf8_body_is_400() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    let resp =
        request_once(&addr, "POST", "/v1/analyze", &[0xff, 0xfe, b'{', b'}'], TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    let text = String::from_utf8_lossy(&resp.body).to_string();
    assert!(text.contains("S002"), "{text}");
    server.shutdown().unwrap();
}

/// A peer that starts a request and stalls (slow loris) is cut off with
/// a 408 once the read deadline expires, freeing the worker.
#[test]
fn slow_loris_gets_408() {
    let limits = Limits { read_timeout: Duration::from_millis(300), ..Limits::default() };
    let server = spawn(ServeOptions { limits, ..ServeOptions::default() });
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    // A request head that never finishes: no blank line, no body.
    stream.write_all(b"POST /v1/analyze HTTP/1.1\r\nhost: argus\r\n").unwrap();
    stream.flush().unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf).to_string();
    assert!(text.starts_with("HTTP/1.1 408 "), "{text}");
    assert!(text.contains("timed out"), "{text}");
    let snapshot = server.state().metrics_snapshot();
    assert!(snapshot.contains("\"read_timeout\":1"), "{snapshot}");
    server.shutdown().unwrap();
}

/// `/v1/batch` mixes per-item successes and failures in one response
/// without failing the whole request.
#[test]
fn batch_mixes_statuses_over_the_wire() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    let entry = argus::corpus::find("append_bff").unwrap();
    let ok = String::from_utf8(analyze_body(&entry)).unwrap();
    let body = format!(
        "{{\"items\":[{ok},{{\"program\":\"p(X :- q.\",\"query\":\"p/1\",\"adornment\":\"b\"}}]}}"
    );
    let resp = request_once(&addr, "POST", "/v1/batch", body.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8_lossy(&resp.body).to_string();
    assert!(text.contains("\"status\":200"), "{text}");
    assert!(text.contains("\"status\":400"), "{text}");
    server.shutdown().unwrap();
}

/// `/v1/lint` returns the same JSON `argus lint --format json` prints.
#[test]
fn lint_over_the_wire_matches_cli_renderer() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    let body = format!("{{\"program\":{}}}", json_str("p(X) :- q(X).\n"));
    let resp = request_once(&addr, "POST", "/v1/lint", body.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8_lossy(&resp.body).to_string();
    assert!(text.contains("\"diagnostics\""), "{text}");
    assert!(text.ends_with('\n'), "lint response must end with a newline");
    server.shutdown().unwrap();
}

/// 64 concurrent keep-alive connections, every response 200 and
/// byte-identical to the locally computed report — the concurrency bar
/// from the acceptance criteria, in-tree so CI enforces it.
#[test]
fn sixty_four_connections_zero_non_2xx() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    let cases: Vec<(Vec<u8>, String)> = argus::corpus::corpus()
        .into_iter()
        .map(|e| (analyze_body(&e), expected_report(&e)))
        .collect();
    std::thread::scope(|scope| {
        for conn in 0..64 {
            let cases = &cases;
            let addr = addr.as_str();
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
                for i in 0..4 {
                    let (body, expected) = &cases[(conn + i) % cases.len()];
                    let resp = client.request("POST", "/v1/analyze", body).unwrap();
                    assert_eq!(resp.status, 200, "conn {conn} req {i}");
                    assert_eq!(
                        &String::from_utf8_lossy(&resp.body),
                        expected,
                        "conn {conn} req {i}: body diverges"
                    );
                }
            });
        }
    });
    let snapshot = server.state().metrics_snapshot();
    assert!(snapshot.contains("\"status_4xx\":0"), "{snapshot}");
    assert!(snapshot.contains("\"status_5xx\":0"), "{snapshot}");
    server.shutdown().unwrap();
}

/// Drain is graceful: `shutdown()` returns cleanly, and the port stops
/// accepting new connections afterwards.
#[test]
fn graceful_drain_stops_accepting() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    let resp = request_once(&addr, "GET", "/healthz", b"", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let sockaddr = server.addr;
    server.shutdown().unwrap();
    // The listener is closed; a fresh connect must fail (give the OS a
    // beat to tear the socket down).
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect_timeout(&sockaddr, Duration::from_millis(500)).is_err()
            || request_once(&addr, "GET", "/healthz", b"", Duration::from_millis(500)).is_err(),
        "server still answering after drain"
    );
}

/// `/v1/analyze` accepts an `"engine"` knob: non-theta engines render
/// `argus-engine/v1` bodies byte-identical to the CLI runner, the engine
/// id is part of the cache key (cold miss, warm hit, no collision with
/// the default theta entry), and unknown ids are 400s.
#[test]
fn engine_knob_round_trips_and_caches_per_engine() {
    let server = spawn(ServeOptions::default());
    let addr = server.addr.to_string();
    let entry = argus::corpus::find("sct_lex_reset").unwrap();
    let body = format!(
        "{{\"program\":{},\"query\":{},\"adornment\":{},\"engine\":\"sct\"}}",
        json_str(entry.source),
        json_str(entry.query),
        json_str(entry.adornment)
    );
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    let options = AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() };
    let engines = vec![argus::baselines::engine_by_id("sct").unwrap()];
    let expected = format!(
        "{}\n",
        argus::core::run_portfolio(&engines, &program, &query, &adornment, &options, 1, false)
            .to_json(false)
    );
    let cold = request_once(&addr, "POST", "/v1/analyze", body.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-argus-cache"), Some("miss"));
    assert_eq!(String::from_utf8_lossy(&cold.body), expected);
    let warm = request_once(&addr, "POST", "/v1/analyze", body.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(warm.header("x-argus-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);
    // The default (theta) request is a distinct cache entry rendering the
    // classic TerminationReport body.
    let theta = request_once(&addr, "POST", "/v1/analyze", &analyze_body(&entry), TIMEOUT).unwrap();
    assert_eq!(theta.status, 200);
    assert_eq!(theta.header("x-argus-cache"), Some("miss"));
    assert_ne!(theta.body, cold.body);
    // Unknown engine ids are request errors, not silent defaults.
    let bad = body.replace("\"sct\"", "\"zzz\"");
    let resp = request_once(&addr, "POST", "/v1/analyze", bad.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    assert!(String::from_utf8_lossy(&resp.body).contains("engine"), "{resp:?}");
    server.shutdown().unwrap();
}

/// The fuzz harness's serve oracle runs end-to-end: every generated case
/// round-trips through a live server byte-identically.
#[test]
fn fuzz_serve_oracle_round_trips() {
    let server = spawn(ServeOptions::default());
    let opts = argus::fuzz::FuzzOptions {
        seed: 7,
        cases: 20,
        jobs: 2,
        serve_addr: Some(server.addr.to_string()),
        ..argus::fuzz::FuzzOptions::default()
    };
    let report = argus::fuzz::run(&opts);
    assert!(report.clean(), "serve oracle violations: {}", report.to_json());
    server.shutdown().unwrap();
}
