//! Global symbol interning.
//!
//! Every functor, constant, variable, and predicate name in the system is
//! a [`Sym`]: a `u32` index into a process-wide append-only string table.
//! Equality and hashing are O(1) on the id; ordering compares the resolved
//! strings so `BTreeMap`/`BTreeSet` iteration stays in lexicographic
//! order — the property every piece of text/JSON output in this repo
//! depends on for byte-identical reports. (Interning ids are assigned in
//! first-come order, and under the `--jobs` worker pool that order races;
//! nothing observable may ever depend on id order, and the `Ord` instance
//! enforces that by never looking at ids.)
//!
//! The table is built for a read-mostly parallel workload: lookups of
//! already-interned strings take a sharded read lock, and resolving an id
//! back to its string is entirely lock-free (an atomic chunk-table walk),
//! so `Display` formatting and string comparisons on the analysis hot
//! paths never contend. Interned strings are leaked — the table is global
//! and append-only by design, and the population is bounded by the
//! distinct names in the programs a process analyzes.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// Strings per chunk of the id → string table.
const CHUNK: usize = 4096;
/// Maximum number of chunks (bounds the table at ~16M symbols).
const NCHUNKS: usize = 4096;
/// Shards of the string → id map; selected by the string's hash.
const NSHARDS: usize = 32;

/// An interned string. `Copy`, 4 bytes, O(1) equality/hash; dereferences
/// to the underlying `str`.
#[derive(Clone, Copy)]
pub struct Sym(u32);

impl Sym {
    /// Intern `s`, returning its symbol (allocating an id on first sight).
    pub fn new(s: impl AsRef<str>) -> Sym {
        interner().intern(s.as_ref())
    }

    /// The interned string. Lock-free.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self.0)
    }

    /// The raw id. Ids are assigned in first-come order and race under
    /// parallel interning: use only for capacity-style diagnostics, never
    /// for anything output-visible.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        self.0 == other.0
    }
}
impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

/// Ordering compares the *strings*, not the ids: interning order is
/// nondeterministic under `--jobs`, and every ordered container in the
/// output path relies on lexicographic iteration.
impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}
impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}
impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(s)
    }
}
impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::new(s.as_str())
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}
impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Number of symbols interned so far in this process.
pub fn symbols_interned() -> u64 {
    interner().len.load(Ordering::Acquire) as u64
}

/// Total bytes of string payload held by the interner.
pub fn interned_bytes() -> u64 {
    interner().bytes.load(Ordering::Relaxed) as u64
}

struct Interner {
    /// string → id, sharded by string hash. Read-mostly after warmup.
    shards: Vec<RwLock<HashMap<&'static str, u32>>>,
    /// id → string: chunked so readers never see a reallocation. Each
    /// chunk is a leaked array of thin pointers to leaked `&'static str`
    /// fat pointers (a fat pointer cannot be stored atomically).
    chunks: Vec<AtomicPtr<Slot>>,
    len: AtomicU32,
    bytes: AtomicUsize,
}

type Slot = AtomicPtr<&'static str>;

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: (0..NSHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        chunks: (0..NCHUNKS).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
        len: AtomicU32::new(0),
        bytes: AtomicUsize::new(0),
    })
}

fn shard_of(s: &str) -> usize {
    // FNV-1a over the bytes; independent of the map's own hasher.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % NSHARDS
}

impl Interner {
    fn intern(&self, s: &str) -> Sym {
        let shard = &self.shards[shard_of(s)];
        if let Some(&id) = shard.read().expect("interner shard").get(s) {
            return Sym(id);
        }
        let mut map = shard.write().expect("interner shard");
        if let Some(&id) = map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let id = self.len.fetch_add(1, Ordering::AcqRel);
        assert!((id as usize) < CHUNK * NCHUNKS, "interner capacity exceeded");
        self.bytes.fetch_add(s.len(), Ordering::Relaxed);
        let slot = self.slot(id as usize);
        let fat: &'static mut &'static str = Box::leak(Box::new(leaked));
        slot.store(fat, Ordering::Release);
        map.insert(leaked, id);
        Sym(id)
    }

    fn slot(&self, id: usize) -> &Slot {
        let (c, i) = (id / CHUNK, id % CHUNK);
        let mut chunk = self.chunks[c].load(Ordering::Acquire);
        if chunk.is_null() {
            let fresh: Box<[Slot]> =
                (0..CHUNK).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
            let fresh = Box::into_raw(fresh) as *mut Slot;
            match self.chunks[c].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => chunk = fresh,
                Err(winner) => {
                    // Another thread installed the chunk first; free ours.
                    drop(unsafe {
                        Box::from_raw(std::ptr::slice_from_raw_parts_mut(fresh, CHUNK))
                    });
                    chunk = winner;
                }
            }
        }
        unsafe { &*chunk.add(i) }
    }

    fn resolve(&self, id: u32) -> &'static str {
        let (c, i) = (id as usize / CHUNK, id as usize % CHUNK);
        let chunk = self.chunks[c].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null(), "resolve of unknown symbol {id}");
        let fat = unsafe { (*chunk.add(i)).load(Ordering::Acquire) };
        debug_assert!(!fat.is_null(), "resolve of unpublished symbol {id}");
        unsafe { *fat }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeSet, HashSet};

    #[test]
    fn intern_round_trips_and_dedups() {
        let a = Sym::new("append");
        let b = Sym::new("append");
        let c = Sym::new("member");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "append");
        assert_eq!(c.as_str(), "member");
        assert_eq!(&*a, "append");
    }

    #[test]
    fn ord_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order: ids ascend, strings
        // descend — the BTreeSet must still iterate lexicographically.
        let names = ["zeta_ord", "midl_ord", "alfa_ord"];
        let syms: Vec<Sym> = names.iter().map(Sym::new).collect();
        let set: BTreeSet<Sym> = syms.iter().copied().collect();
        let iterated: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
        assert_eq!(iterated, vec!["alfa_ord", "midl_ord", "zeta_ord"]);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names: Vec<String> = (0..2000).map(|i| format!("conc_sym_{}", i % 500)).collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || {
                    names.iter().map(|n| (n.clone(), Sym::new(n))).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut seen: HashMap<String, u32> = HashMap::new();
        for h in handles {
            for (name, sym) in h.join().expect("thread") {
                assert_eq!(sym.as_str(), name);
                let id = *seen.entry(name).or_insert(sym.id());
                assert_eq!(id, sym.id(), "same string must get the same id everywhere");
            }
        }
        assert_eq!(seen.len(), 500);
        let distinct: HashSet<u32> = seen.values().copied().collect();
        assert_eq!(distinct.len(), 500);
    }

    #[test]
    fn crosses_chunk_boundaries() {
        // Force allocation past the first chunk and resolve across it.
        let mut syms = Vec::new();
        for i in 0..(CHUNK + 10) {
            syms.push(Sym::new(format!("chunk_fill_{i}")));
        }
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("chunk_fill_{i}"));
        }
        assert!(symbols_interned() > CHUNK as u64);
        assert!(interned_bytes() > 0);
    }
}
