//! Property-based tests for the exact-arithmetic substrate.
//!
//! `BigInt`/`Rat` are checked against an `i128` reference model; Fourier–
//! Motzkin and simplex are cross-checked against each other on random
//! systems, since they are independent decision procedures for the same
//! question.

use argus_linear::fm::{self, FmResult};
use argus_linear::simplex;
use argus_linear::{BigInt, Constraint, ConstraintSystem, LinExpr, Rat};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn bigint_strategy() -> impl Strategy<Value = (i128, BigInt)> {
    any::<i64>().prop_map(|v| (v as i128, BigInt::from(v)))
}

proptest! {
    #[test]
    fn bigint_add_matches_i128((a, ba) in bigint_strategy(), (b, bb) in bigint_strategy()) {
        prop_assert_eq!((&ba + &bb).to_i128(), Some(a + b));
    }

    #[test]
    fn bigint_mul_matches_i128((a, ba) in bigint_strategy(), (b, bb) in bigint_strategy()) {
        prop_assert_eq!((&ba * &bb).to_i128(), Some(a * b));
    }

    #[test]
    fn bigint_divmod_invariant((a, ba) in bigint_strategy(), (b, bb) in bigint_strategy()) {
        prop_assume!(b != 0);
        let (q, r) = ba.divmod(&bb);
        prop_assert_eq!(&(&q * &bb) + &r, ba.clone());
        prop_assert!(r.abs() < bb.abs());
        // Truncated semantics: remainder carries the dividend's sign.
        if !r.is_zero() {
            prop_assert_eq!(r.is_negative(), a < 0);
        }
    }

    #[test]
    fn bigint_string_roundtrip((_, ba) in bigint_strategy(), (_, bb) in bigint_strategy()) {
        // Multiply to exceed 64 bits regularly.
        let big = &(&ba * &bb) * &bb;
        let s = big.to_string();
        let back: BigInt = s.parse().unwrap();
        prop_assert_eq!(back, big);
    }

    #[test]
    fn bigint_gcd_divides_both((a, ba) in bigint_strategy(), (b, bb) in bigint_strategy()) {
        let g = ba.gcd(&bb);
        if a != 0 || b != 0 {
            prop_assert!(!g.is_zero());
            prop_assert!((&ba % &g).is_zero());
            prop_assert!((&bb % &g).is_zero());
        } else {
            prop_assert!(g.is_zero());
        }
    }

    #[test]
    fn bigint_ordering_matches_i128((a, ba) in bigint_strategy(), (b, bb) in bigint_strategy()) {
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
    }
}

fn rat_strategy() -> impl Strategy<Value = Rat> {
    (-1000i64..1000, 1i64..60).prop_map(|(n, d)| Rat::new(n.into(), d.into()))
}

proptest! {
    #[test]
    fn rat_field_laws(a in rat_strategy(), b in rat_strategy(), c in rat_strategy()) {
        // Associativity and commutativity of + and *.
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &b, &b * &a);
        // Distributivity.
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Additive inverse.
        prop_assert!((&a + &(-&a)).is_zero());
    }

    #[test]
    fn rat_recip_is_inverse(a in rat_strategy()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(&a * &a.recip(), Rat::one());
    }

    #[test]
    fn rat_order_total_and_compatible(a in rat_strategy(), b in rat_strategy(), c in rat_strategy()) {
        // Order respects addition.
        if a <= b {
            prop_assert!(&a + &c <= &b + &c);
        }
        // floor/ceil bracket the value.
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rat::one());
    }
}

/// Generate a small random constraint system over `nvars` variables with
/// small integer coefficients.
fn system_strategy(nvars: usize, max_rows: usize) -> impl Strategy<Value = ConstraintSystem> {
    let row = (proptest::collection::vec(-3i64..=3, nvars), -8i64..=8, prop::bool::ANY);
    proptest::collection::vec(row, 1..=max_rows).prop_map(move |rows| {
        let mut sys = ConstraintSystem::new();
        for (coeffs, cst, is_eq) in rows {
            let mut e = LinExpr::constant(Rat::from_int(cst));
            for (v, c) in coeffs.into_iter().enumerate() {
                e.add_term(v, Rat::from_int(c));
            }
            let c = if is_eq {
                Constraint { expr: e, rel: argus_linear::Rel::Eq }
            } else {
                Constraint { expr: e, rel: argus_linear::Rel::Le }
            };
            sys.push(c);
        }
        sys
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FM and simplex must agree on satisfiability of random systems
    /// (variables unrestricted in sign for both).
    #[test]
    fn fm_and_simplex_agree(sys in system_strategy(3, 5)) {
        let fm_sat = fm::is_satisfiable_fm(&sys);
        let sx_sat = simplex::feasible_point(&sys, &BTreeSet::new()).is_some();
        prop_assert_eq!(fm_sat, sx_sat, "system:\n{}", sys);
    }

    /// Any witness point found by simplex satisfies the system.
    #[test]
    fn simplex_witness_is_valid(sys in system_strategy(3, 5)) {
        if let Some(pt) = simplex::feasible_point(&sys, &BTreeSet::new()) {
            prop_assert!(sys.holds_at(&pt), "bad witness for:\n{}", sys);
        }
    }

    /// FM projection is sound: projecting a satisfying point stays
    /// satisfying.
    #[test]
    fn fm_projection_preserves_points(sys in system_strategy(3, 5)) {
        if let Some(pt) = simplex::feasible_point(&sys, &BTreeSet::new()) {
            match fm::eliminate(&sys, 0) {
                FmResult::Infeasible => prop_assert!(false, "witness exists yet FM says infeasible"),
                FmResult::Projected(projected) => {
                    let mut reduced: BTreeMap<usize, Rat> = pt.clone();
                    reduced.remove(&0);
                    prop_assert!(projected.holds_at(&reduced));
                }
            }
        }
    }

    /// FM projection is complete: any point of the projection extends to a
    /// point of the original (checked by substituting the projected point
    /// and asking simplex for the eliminated variable).
    #[test]
    fn fm_projection_points_extend(sys in system_strategy(3, 4)) {
        if let FmResult::Projected(projected) = fm::eliminate(&sys, 0) {
            if let Some(ppt) = simplex::feasible_point(&projected, &BTreeSet::new()) {
                // Substitute the projected values into the original system.
                let mut narrowed = sys.clone();
                for (v, val) in &ppt {
                    narrowed = narrowed.substitute(*v, &LinExpr::constant(val.clone()));
                }
                let extended = simplex::feasible_point(&narrowed, &BTreeSet::new());
                prop_assert!(extended.is_some(),
                    "projected point does not extend; system:\n{}", sys);
            }
        }
    }

    /// dedup and canonicalization preserve the solution set.
    #[test]
    fn dedup_preserves_semantics(sys in system_strategy(3, 5)) {
        let d = sys.dedup();
        // Same satisfiability...
        prop_assert_eq!(
            simplex::feasible_point(&sys, &BTreeSet::new()).is_some(),
            simplex::feasible_point(&d, &BTreeSet::new()).is_some()
        );
        // ...and any witness of either satisfies the other.
        if let Some(pt) = simplex::feasible_point(&sys, &BTreeSet::new()) {
            prop_assert!(d.holds_at(&pt));
        }
        if let Some(pt) = simplex::feasible_point(&d, &BTreeSet::new()) {
            prop_assert!(sys.holds_at(&pt));
        }
    }

    /// The LP minimum really is a lower bound over random feasible samples.
    #[test]
    fn lp_minimum_is_lower_bound(sys in system_strategy(3, 4), obj_coeffs in proptest::collection::vec(-3i64..=3, 3)) {
        let nonneg: BTreeSet<usize> = (0..3).collect();
        let mut obj = LinExpr::zero();
        for (v, c) in obj_coeffs.iter().enumerate() {
            obj.add_term(v, Rat::from_int(*c));
        }
        let p = argus_linear::LpProblem {
            objective: obj.clone(),
            constraints: sys.clone(),
            nonneg: nonneg.clone(),
        };
        if let argus_linear::LpOutcome::Optimal { value, point } = p.solve() {
            prop_assert!(sys.holds_at(&point));
            prop_assert_eq!(obj.eval(&point), value.clone());
            // Any feasible point scores no better.
            if let Some(other) = simplex::feasible_point(&sys, &nonneg) {
                prop_assert!(obj.eval(&other) >= value);
            }
        }
    }
}

mod poly_props {
    use super::*;
    use argus_linear::Poly;

    fn small_poly(dim: usize) -> impl Strategy<Value = Poly> {
        system_strategy(dim, 4).prop_map(move |sys| Poly::from_constraints(dim, sys))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn hull_contains_both(a in small_poly(2), b in small_poly(2)) {
            let h = a.hull(&b);
            prop_assert!(a.includes_in(&h));
            prop_assert!(b.includes_in(&h));
        }

        #[test]
        fn meet_included_in_both(a in small_poly(2), b in small_poly(2)) {
            let m = a.meet(&b);
            prop_assert!(m.includes_in(&a));
            prop_assert!(m.includes_in(&b));
        }

        #[test]
        fn widen_is_upper_bound(a in small_poly(2), b in small_poly(2)) {
            // Widening of a by (a ⊔ b) must contain both.
            let j = a.hull(&b);
            let w = a.widen(&j);
            prop_assert!(j.includes_in(&w));
        }

        #[test]
        fn minimized_same_set(a in small_poly(2)) {
            prop_assert!(a.minimized().same_set(&a));
        }

        #[test]
        fn sample_point_is_member(a in small_poly(2)) {
            if let Some(pt) = a.sample_point() {
                prop_assert!(a.contains_point(&pt));
            } else {
                prop_assert!(a.is_empty());
            }
        }
    }
}
