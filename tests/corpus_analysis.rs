//! Whole-corpus integration: for every corpus entry, the analyzer must
//! (a) reach exactly the verdict the entry pins (`expected_provable`), and
//! (b) never prove a mode whose ground truth is nontermination — the
//! soundness property that makes the paper's method usable in a capture
//! rule.

use argus::prelude::*;

#[test]
fn analyzer_matches_corpus_pins() {
    let mut failures = Vec::new();
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        let proved = report.verdict == Verdict::Terminates;
        if proved != entry.expected_provable {
            failures.push(format!(
                "{}: expected provable={}, got {:?}\n{report}",
                entry.name, entry.expected_provable, report.verdict
            ));
        }
        if proved && !entry.terminates {
            panic!("SOUNDNESS VIOLATION on {}: proved a nonterminating mode\n{report}", entry.name);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
}

#[test]
fn zero_weight_cycle_reported_for_loop_mutual() {
    let entry = argus::corpus::find("loop_mutual").unwrap();
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
    assert_eq!(report.verdict, Verdict::ZeroWeightCycle, "{report}");
}

/// Empirical soundness: every proved program completes its sample queries
/// within the interpreter budget; the nonterminating controls exhaust it.
#[test]
fn proved_programs_terminate_empirically() {
    use argus::interp::sld::{solve, InterpOptions};
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        if report.verdict != Verdict::Terminates {
            continue;
        }
        for q in entry.sample_queries {
            let goals = argus::logic::parser::parse_query(q).unwrap();
            let out = solve(&program, &goals, &InterpOptions::default());
            assert!(
                out.terminated(),
                "{}: proved terminating but query {q} ran out of budget ({} steps)",
                entry.name,
                out.steps()
            );
        }
    }
}

/// The nonterminating controls really do run away under the interpreter.
#[test]
fn nonterminating_controls_exhaust_budget() {
    use argus::interp::sld::{solve, InterpOptions};
    for name in ["loop_direct", "loop_mutual", "transitive_closure"] {
        let entry = argus::corpus::find(name).unwrap();
        let program = entry.program().unwrap();
        let goals = argus::logic::parser::parse_query(entry.sample_queries[0]).unwrap();
        let out = solve(
            &program,
            &goals,
            &InterpOptions { max_steps: 20_000, ..InterpOptions::default() },
        );
        assert!(!out.terminated(), "{name} unexpectedly terminated");
    }
}

/// Capture-rule contrast (paper §1): transitive closure over a cyclic graph
/// diverges top-down but saturates bottom-up; nat-generation does the
/// opposite (bottom-up diverges, top-down with a bound goal terminates).
#[test]
fn capture_rule_contrast() {
    use argus::interp::bottomup::{saturate, BottomUpOptions};
    use argus::interp::sld::{solve, InterpOptions};

    let tc = argus::corpus::find("transitive_closure").unwrap();
    let program = tc.program().unwrap();
    // Bottom-up: converges.
    assert!(saturate(&program, &BottomUpOptions::default()).converged());
    // Top-down: diverges.
    let goals = argus::logic::parser::parse_query("tc(a, Y)").unwrap();
    let out =
        solve(&program, &goals, &InterpOptions { max_steps: 20_000, ..InterpOptions::default() });
    assert!(!out.terminated());

    // nat: top-down with bound argument terminates, bottom-up diverges.
    let nat = argus::logic::parser::parse_program("nat(z).\nnat(s(N)) :- nat(N).").unwrap();
    let goals = argus::logic::parser::parse_query("nat(s(s(z)))").unwrap();
    assert!(solve(&nat, &goals, &InterpOptions::default()).terminated());
    use argus::interp::bottomup::Saturation;
    let sat = saturate(&nat, &BottomUpOptions { max_facts: 500, max_iterations: 10_000 });
    assert!(matches!(sat, Saturation::Diverged { .. }));
}

/// The engines are incomparable by construction, and the corpus pins
/// separators in both directions: four programs the size-change engine
/// proves while the θ-method stays `Unknown` (lexicographic/reset
/// descent θ's single linear combination cannot express), and one the
/// θ-method proves while size-change misses (crossed descent where only
/// a *sum* of arguments shrinks). The portfolio must therefore beat
/// either engine alone on the corpus.
#[test]
fn engine_separators_hold_in_both_directions() {
    let options = AnalysisOptions::default();
    let sct_only = ["sct_lex_reset", "sct_lex_reset_append", "sct_lex_reset_mutual", "ackermann"];
    for name in sct_only {
        let entry = argus::corpus::find(name).unwrap();
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let theta = analyze(&program, &query, adornment.clone(), &options);
        assert_eq!(theta.verdict, Verdict::Unknown, "{name}: theta should be Unknown");
        let sct = argus::sct::analyze_sct(&program, &query, adornment, &options, None);
        assert!(sct.proved, "{name}: sct should prove\n{sct}");
    }
    let entry = argus::corpus::find("theta_crossed_descent").unwrap();
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    let theta = analyze(&program, &query, adornment.clone(), &options);
    assert_eq!(theta.verdict, Verdict::Terminates, "theta_crossed_descent: theta should prove");
    let sct = argus::sct::analyze_sct(&program, &query, adornment, &options, None);
    assert!(!sct.proved, "theta_crossed_descent: sct should miss\n{sct}");
}

/// The racing portfolio subsumes both engines on the whole corpus: it
/// proves exactly the union, and its winner attribution names an engine
/// that really proves the entry.
#[test]
fn portfolio_subsumes_both_engines_on_corpus() {
    use argus::baselines::standard_engines;
    use argus::core::run_portfolio;
    let options = AnalysisOptions::default();
    let engines = standard_engines();
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let theta = analyze(&program, &query, adornment.clone(), &options);
        let sct = argus::sct::analyze_sct(&program, &query, adornment.clone(), &options, None);
        let portfolio = run_portfolio(&engines, &program, &query, &adornment, &options, 0, true);
        if theta.verdict == Verdict::Terminates || sct.proved {
            assert_eq!(
                portfolio.verdict,
                Verdict::Terminates,
                "{}: portfolio lost a proof an engine has",
                entry.name
            );
        }
        if portfolio.verdict == Verdict::Terminates && !entry.terminates {
            panic!("SOUNDNESS VIOLATION on {}: portfolio proved a nonterminating mode", entry.name);
        }
        if let Some(winner) = portfolio.winner {
            let e = &portfolio.entries[winner];
            assert_eq!(
                e.run.verdict,
                argus::core::EngineVerdict::Proved,
                "{}: winner {} did not prove",
                entry.name,
                e.id
            );
        }
    }
}

/// The witnesses the analyzer returns are genuine: re-check the decrease
/// condition for each proved SCC by LP on the primal side.
#[test]
fn witnesses_are_certified() {
    for name in ["perm", "merge", "expr_parser", "append_bff", "quicksort"] {
        let entry = argus::corpus::find(name).unwrap();
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        assert_eq!(report.verdict, Verdict::Terminates, "{name}");
        for scc in &report.sccs {
            if let argus::core::SccOutcome::Proved { witness, .. } = &scc.outcome {
                for (pred, theta) in witness {
                    // θ is nonnegative and, for the queried SCC, nonzero.
                    assert!(theta.iter().all(|t| !t.is_negative()), "{name}/{pred}");
                }
            }
        }
    }
}
