//! Predicate dependency graph and strongly connected components.
//!
//! Nodes are predicates; there is an arc `p → q` whenever `q` occurs as a
//! subgoal of some rule for `p` (paper §2.3). Termination analysis processes
//! one SCC at a time, in bottom-up topological order, so that information
//! about lower SCCs (their inter-argument constraints) is available.

use crate::program::{PredKey, Program, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// The dependency graph of a program, with its SCC condensation.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// All predicates, in a stable order (index = node id).
    preds: Vec<PredKey>,
    index_of: BTreeMap<PredKey, usize>,
    /// Adjacency: successors of each node (`p → q` for subgoal `q`).
    succ: Vec<BTreeSet<usize>>,
    /// SCC id of each node; SCC ids are in *reverse topological order of
    /// discovery*, normalized below so that [`DepGraph::sccs_bottom_up`]
    /// yields callees before callers.
    scc_of: Vec<usize>,
    /// Members of each SCC.
    scc_members: Vec<Vec<usize>>,
    /// Rule indices (into the program's rule list, ascending) headed in
    /// each SCC, cached at build time so per-SCC rule access is O(|SCC
    /// rules|) instead of a scan over the whole program.
    scc_rule_ix: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Build the dependency graph of `program`.
    pub fn build(program: &Program) -> DepGraph {
        let mut preds: Vec<PredKey> = Vec::new();
        let mut index_of: BTreeMap<PredKey, usize> = BTreeMap::new();
        let intern =
            |k: PredKey, preds: &mut Vec<PredKey>, index_of: &mut BTreeMap<PredKey, usize>| {
                *index_of.entry(k.clone()).or_insert_with(|| {
                    preds.push(k);
                    preds.len() - 1
                })
            };
        for r in &program.rules {
            intern(r.head.key(), &mut preds, &mut index_of);
            for l in &r.body {
                intern(l.atom.key(), &mut preds, &mut index_of);
            }
        }
        let mut succ = vec![BTreeSet::new(); preds.len()];
        for r in &program.rules {
            let h = index_of[&r.head.key()];
            for l in &r.body {
                let s = index_of[&l.atom.key()];
                succ[h].insert(s);
            }
        }
        let (scc_of, scc_members) = tarjan(&succ);
        let mut scc_rule_ix = vec![Vec::new(); scc_members.len()];
        for (ri, r) in program.rules.iter().enumerate() {
            scc_rule_ix[scc_of[index_of[&r.head.key()]]].push(ri);
        }
        DepGraph { preds, index_of, succ, scc_of, scc_members, scc_rule_ix }
    }

    /// All predicates.
    pub fn predicates(&self) -> &[PredKey] {
        &self.preds
    }

    /// The SCC id of a predicate, if present.
    pub fn scc_id(&self, p: &PredKey) -> Option<usize> {
        self.index_of.get(p).map(|&i| self.scc_of[i])
    }

    /// Members of an SCC.
    pub fn scc(&self, id: usize) -> Vec<PredKey> {
        self.scc_members[id].iter().map(|&i| self.preds[i].clone()).collect()
    }

    /// Number of SCCs.
    pub fn scc_count(&self) -> usize {
        self.scc_members.len()
    }

    /// SCC ids in bottom-up order: if SCC `a` calls into SCC `b` (a ≠ b),
    /// then `b` comes before `a`. Tarjan emits SCCs in reverse topological
    /// order of the condensation, which is exactly bottom-up.
    pub fn sccs_bottom_up(&self) -> Vec<usize> {
        (0..self.scc_members.len()).collect()
    }

    /// SCC ids grouped into topological *levels*: level 0 holds SCCs with
    /// no calls into other SCCs, and each later level's SCCs call only into
    /// strictly earlier levels. SCCs at the same level are mutually
    /// independent, so an analysis that imports inter-argument constraints
    /// bottom-up (paper §2.3) can process a whole level concurrently: by
    /// the time a level starts, everything any of its SCCs reads from has
    /// already been computed. Concatenating the levels in order is a valid
    /// bottom-up order; ids within a level are ascending.
    pub fn scc_levels(&self) -> Vec<Vec<usize>> {
        let n = self.scc_members.len();
        // Condensation edges: SCC ids are bottom-up (callees have smaller
        // ids), so a single ascending pass sees every callee's level first.
        let mut level = vec![0usize; n];
        let mut max_level = 0usize;
        for id in 0..n {
            let mut lv = 0usize;
            for &m in &self.scc_members[id] {
                for &s in &self.succ[m] {
                    let callee = self.scc_of[s];
                    if callee != id {
                        lv = lv.max(level[callee] + 1);
                    }
                }
            }
            level[id] = lv;
            max_level = max_level.max(lv);
        }
        let mut out = vec![Vec::new(); max_level + 1];
        for (id, &lv) in level.iter().enumerate() {
            out[lv].push(id);
        }
        out
    }

    /// Do two predicates belong to the same SCC?
    pub fn same_scc(&self, a: &PredKey, b: &PredKey) -> bool {
        match (self.index_of.get(a), self.index_of.get(b)) {
            (Some(&ia), Some(&ib)) => self.scc_of[ia] == self.scc_of[ib],
            _ => false,
        }
    }

    /// Is `p` recursive: in an SCC with >1 member, or with a self-loop?
    pub fn is_recursive(&self, p: &PredKey) -> bool {
        let Some(&i) = self.index_of.get(p) else { return false };
        let id = self.scc_of[i];
        self.scc_members[id].len() > 1 || self.succ[i].contains(&i)
    }

    /// An SCC has *mutual recursion* if it contains more than one predicate
    /// (paper §2.3).
    pub fn scc_is_mutual(&self, id: usize) -> bool {
        self.scc_members[id].len() > 1
    }

    /// Is the SCC trivial (single predicate, not self-recursive)?
    pub fn scc_is_trivial(&self, id: usize) -> bool {
        let members = &self.scc_members[id];
        members.len() == 1 && !self.succ[members[0]].contains(&members[0])
    }

    /// The rules of `program` whose head is in SCC `id`, in program order.
    /// `program` must be the program the graph was built from (the cached
    /// rule indices index into its rule list).
    pub fn scc_rules<'p>(&self, program: &'p Program, id: usize) -> Vec<&'p Rule> {
        debug_assert!(self.scc_rule_ix.iter().map(Vec::len).sum::<usize>() == program.rules.len());
        self.scc_rule_ix[id].iter().map(|&ri| &program.rules[ri]).collect()
    }

    /// The indices (within the rule body) of the *recursive* subgoals of
    /// `rule`: positive-or-negative literals whose predicate is in the same
    /// SCC as the head (paper §2.3).
    pub fn recursive_subgoals(&self, rule: &Rule) -> Vec<usize> {
        let head = rule.head.key();
        rule.body
            .iter()
            .enumerate()
            .filter(|(_, l)| self.same_scc(&head, &l.atom.key()))
            .map(|(i, _)| i)
            .collect()
    }

    /// Is recursion in SCC `id` linear: every rule headed in the SCC has at
    /// most one recursive subgoal (paper §2.3)?
    pub fn scc_is_linear(&self, program: &Program, id: usize) -> bool {
        self.scc_rules(program, id).iter().all(|r| self.recursive_subgoals(r).len() <= 1)
    }
}

/// Tarjan's SCC algorithm (iterative). Returns `(scc_of, members)` with SCC
/// ids in reverse topological order (callees first).
fn tarjan(succ: &[BTreeSet<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let n = succ.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![UNSET; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    // Explicit DFS stack: (node, iterator position over successors).
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        let mut call: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        index[start] = counter;
        low[start] = counter;
        counter += 1;
        stack.push(start);
        on_stack[start] = true;
        call.push((start, succ[start].iter().copied().collect(), 0));

        while let Some((v, children, pos)) = call.last_mut() {
            if *pos < children.len() {
                let w = children[*pos];
                *pos += 1;
                if index[w] == UNSET {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, succ[w].iter().copied().collect(), 0));
                } else if on_stack[w] {
                    let lv = low[*v].min(index[w]);
                    low[*v] = lv;
                }
            } else {
                let v = *v;
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc_of[w] = members.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.push(comp);
                }
                call.pop();
                if let Some((parent, _, _)) = call.last() {
                    let lv = low[*parent].min(low[v]);
                    low[*parent] = lv;
                }
            }
        }
    }
    (scc_of, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn append_is_one_selfrec_scc() {
        let p =
            parse_program("append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).")
                .unwrap();
        let g = DepGraph::build(&p);
        let app = PredKey::new("append", 3);
        assert!(g.is_recursive(&app));
        let id = g.scc_id(&app).unwrap();
        assert!(!g.scc_is_mutual(id));
        assert!(g.scc_is_linear(&p, id));
    }

    #[test]
    fn parser_example_is_mutual_scc() {
        // Example 6.1: e, t, n are one SCC; z is below.
        let p = parse_program(
            "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
             e(L, T) :- t(L, T).\n\
             t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
             t(L, T) :- n(L, T).\n\
             n(['('|A], T) :- e(A, [')'|T]).\n\
             n([L|T], T) :- z(L).",
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let (e, t, n, z) = (
            PredKey::new("e", 2),
            PredKey::new("t", 2),
            PredKey::new("n", 2),
            PredKey::new("z", 1),
        );
        assert!(g.same_scc(&e, &t));
        assert!(g.same_scc(&t, &n));
        assert!(!g.same_scc(&e, &z));
        let id = g.scc_id(&e).unwrap();
        assert!(g.scc_is_mutual(id));
        // Rule "e :- t, e" has two recursive subgoals (t and e are both in
        // the SCC), so the SCC is nonlinear.
        assert!(!g.scc_is_linear(&p, id));
        // Bottom-up order puts z's SCC before the e/t/n SCC.
        let order = g.sccs_bottom_up();
        let pos = |id: usize| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(g.scc_id(&z).unwrap()) < pos(id));
    }

    #[test]
    fn recursive_subgoals_indices() {
        let p = parse_program("p(X) :- q(X), p(X), r(X), p(X).\nq(a).\nr(a).").unwrap();
        let g = DepGraph::build(&p);
        let idx = g.recursive_subgoals(&p.rules[0]);
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn nonrecursive_predicate() {
        let p = parse_program("p(X) :- q(X).\nq(a).").unwrap();
        let g = DepGraph::build(&p);
        assert!(!g.is_recursive(&PredKey::new("p", 1)));
        assert!(!g.is_recursive(&PredKey::new("q", 1)));
        let id_p = g.scc_id(&PredKey::new("p", 1)).unwrap();
        assert!(g.scc_is_trivial(id_p));
    }

    #[test]
    fn bottom_up_is_topological_on_chain() {
        let p = parse_program("a(X) :- b(X).\nb(X) :- c(X).\nc(X) :- d(X).\nd(a).").unwrap();
        let g = DepGraph::build(&p);
        let order = g.sccs_bottom_up();
        let pos = |name: &str| {
            let id = g.scc_id(&PredKey::new(name, 1)).unwrap();
            order.iter().position(|&x| x == id).unwrap()
        };
        assert!(pos("d") < pos("c"));
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn two_cycles_are_distinct_sccs() {
        let p = parse_program("p(X) :- q(X).\nq(X) :- p(X).\nr(X) :- s(X), p(X).\ns(X) :- r(X).")
            .unwrap();
        let g = DepGraph::build(&p);
        assert!(g.same_scc(&PredKey::new("p", 1), &PredKey::new("q", 1)));
        assert!(g.same_scc(&PredKey::new("r", 1), &PredKey::new("s", 1)));
        assert!(!g.same_scc(&PredKey::new("p", 1), &PredKey::new("r", 1)));
        assert_eq!(g.scc_count(), 2);
    }

    #[test]
    fn scc_levels_partition_and_respect_dependencies() {
        // Two independent chains sharing a base: a -> c, b -> c, c leaf.
        let p = parse_program("a(X) :- c(X).\nb(X) :- c(X).\nc(a).").unwrap();
        let g = DepGraph::build(&p);
        let levels = g.scc_levels();
        let find = |name: &str| {
            let id = g.scc_id(&PredKey::new(name, 1)).unwrap();
            levels.iter().position(|lv| lv.contains(&id)).unwrap()
        };
        assert_eq!(find("c"), 0);
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 1, "independent SCCs share a level");
        // Every SCC appears exactly once.
        let total: usize = levels.iter().map(|lv| lv.len()).sum();
        assert_eq!(total, g.scc_count());
    }

    #[test]
    fn scc_levels_on_deep_chain() {
        let p = parse_program("a(X) :- b(X).\nb(X) :- c(X).\nc(X) :- d(X).\nd(a).").unwrap();
        let g = DepGraph::build(&p);
        let levels = g.scc_levels();
        assert_eq!(levels.len(), 4, "a chain gives one SCC per level");
        assert!(levels.iter().all(|lv| lv.len() == 1));
        // Levels concatenated must be a valid bottom-up order.
        let flat: Vec<usize> = levels.iter().flatten().copied().collect();
        let pos = |id: usize| flat.iter().position(|&x| x == id).unwrap();
        for r in &p.rules {
            let h = g.scc_id(&r.head.key()).unwrap();
            for l in &r.body {
                let s = g.scc_id(&l.atom.key()).unwrap();
                assert!(pos(s) <= pos(h));
            }
        }
    }

    #[test]
    fn mutual_scc_counts_negative_literals() {
        let p = parse_program("p(X) :- \\+ q(X).\nq(X) :- p(X).").unwrap();
        let g = DepGraph::build(&p);
        assert!(g.same_scc(&PredKey::new("p", 1), &PredKey::new("q", 1)));
    }
}
