//! End-to-end tests of `argus lint`, including a golden-file test of the
//! stable `--json` output.
//!
//! When a deliberate change to the lint passes or the demo program shifts
//! the JSON, regenerate the golden file with:
//!
//! ```text
//! cargo run --bin argus -- lint examples/lint_demo.pl \
//!     --query main/1 --mode b --json > tests/golden/lint_demo.json
//! ```

use std::io::Write;
use std::process::Command;

fn argus() -> Command {
    Command::new(env!("CARGO_BIN_EXE_argus"))
}

fn temp_program(tag: &str, src: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("argus-lint-test-{}-{tag}.pl", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

#[test]
fn lint_demo_json_matches_golden_file() {
    let out = argus()
        .args(["lint", "examples/lint_demo.pl", "--query", "main/1", "--mode", "b", "--json"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let golden = include_str!("golden/lint_demo.json");
    assert_eq!(stdout, golden, "JSON drifted from tests/golden/lint_demo.json");
    // The demo contains L002 errors, so the exit code is 1.
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_demo_exercises_every_code() {
    let golden = include_str!("golden/lint_demo.json");
    for code in ["L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010"] {
        assert!(golden.contains(&format!("\"code\":\"{code}\"")), "{code} missing from demo");
    }
}

#[test]
fn lint_text_output_has_carets_and_locations() {
    let out = argus()
        .args(["lint", "examples/lint_demo.pl", "--query", "main/1", "--mode", "b"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--> examples/lint_demo.pl:8:5"), "{stdout}");
    assert!(stdout.contains("^^^^^^^^^^^^^"), "{stdout}");
    assert!(stdout.contains("did you mean `length`?"), "{stdout}");
}

#[test]
fn lint_clean_program_exits_zero() {
    let path = temp_program(
        "clean",
        "edge(a, b).\nedge(b, c).\n\
         path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).\n\
         main(X) :- path(a, X).\n",
    );
    let out = argus().args(["lint", path.to_str().unwrap()]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn lint_warnings_exit_two() {
    // A singleton (L001) and an orphan predicate (L003): warnings, no errors.
    let path = temp_program("warn", "p(a).\nq(X, Y) :- p(X).\n");
    let out = argus().args(["lint", path.to_str().unwrap()]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "{stdout}");
    assert!(stdout.contains("warning[L001]"), "{stdout}");
}

#[test]
fn lint_parse_error_is_l000_and_exits_one() {
    let path = temp_program("syntax", "p(a) q(b).\n");
    let out = argus().args(["lint", path.to_str().unwrap(), "--json"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("\"code\":\"L000\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"error\""), "{stdout}");
}

#[test]
fn lint_query_needs_mode() {
    let out =
        argus().args(["lint", "examples/lint_demo.pl", "--query", "main/1"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--mode"), "{err}");
}

#[test]
fn analyze_undefined_query_predicate_exits_one_with_l002() {
    let path = temp_program("undef", "p(a).\np(X) :- p(X).\n");
    let out = argus().args(["analyze", path.to_str().unwrap(), "q/1", "b"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error[L002]"), "{err}");
    assert!(err.contains("q/1 is not defined"), "{err}");
    assert!(err.contains("did you mean `p/1`?"), "{err}");
}
