//! Robustness of the persistent per-SCC cache (`argus analyze
//! --incremental`): a damaged, truncated, stale, or concurrently-written
//! on-disk cache must NEVER change the analysis output or crash the
//! process — every corruption degrades to a silent miss and the report
//! stays byte-identical to a cold run.

use argus::core::{analyze_with_caches, SccCache};
use argus::prelude::*;
use std::path::{Path, PathBuf};

fn render(report: &TerminationReport) -> (String, String) {
    (report.to_string(), report.to_json())
}

/// A unique scratch directory under the system temp dir (no tempfile
/// crate: the workspace is dependency-free).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("argus-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The cheap half of the corpus: plenty of SCC shapes without the
/// FM-stress entries that dominate debug-build runtime.
fn light_entries() -> Vec<argus::corpus::CorpusEntry> {
    let keep =
        ["append_bff", "perm", "even_odd", "quicksort", "reverse_acc", "expr_parser", "zip_pairs"];
    argus::corpus::corpus().into_iter().filter(|e| keep.contains(&e.name)).collect()
}

fn analyze_cold(entry: &argus::corpus::CorpusEntry) -> (String, String) {
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    render(&analyze(&program, &query, adornment, &AnalysisOptions::default()))
}

fn analyze_memo(entry: &argus::corpus::CorpusEntry, memo: &SccCache) -> (String, String) {
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    render(&analyze_with_caches(
        &program,
        &query,
        adornment,
        &AnalysisOptions::default(),
        None,
        Some(memo),
    ))
}

/// Warm in-memory memo: the second run must be byte-identical to the cold
/// run AND fully warm — zero sizerel misses, zero θ misses.
#[test]
fn warm_memo_is_byte_identical_and_fully_warm() {
    for entry in argus::corpus::corpus() {
        let cold = analyze_cold(&entry);
        let memo = SccCache::unbounded();
        let first = analyze_memo(&entry, &memo);
        assert_eq!(cold, first, "{}: first memoized run differs from cold", entry.name);
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let second = analyze_with_caches(
            &program,
            &query,
            adornment,
            &AnalysisOptions::default(),
            None,
            Some(&memo),
        );
        assert_eq!(cold, render(&second), "{}: warm run differs from cold", entry.name);
        let incr = second.incremental.expect("memoized run records incremental stats");
        assert_eq!(incr.size_misses, 0, "{}: warm run missed in sizerel memo", entry.name);
        assert_eq!(incr.theta_misses, 0, "{}: warm run missed in theta memo", entry.name);
    }
}

/// A memo primed sequentially must serve parallel runs the identical
/// bytes (the key must not depend on worker count), and vice versa.
#[test]
fn memo_is_worker_count_transparent() {
    for entry in light_entries() {
        let cold = analyze_cold(&entry);
        let memo = SccCache::unbounded();
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        for jobs in [1usize, 0, 8] {
            let options = AnalysisOptions { parallelism: jobs, ..Default::default() };
            let got = render(&analyze_with_caches(
                &program,
                &query,
                adornment.clone(),
                &options,
                None,
                Some(&memo),
            ));
            assert_eq!(cold, got, "{}: memoized report differs at --jobs {jobs}", entry.name);
        }
    }
}

fn cache_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "argusscc"))
        .collect();
    files.sort();
    files
}

/// Prime a disk cache from scratch so every corruption round starts from
/// a fully valid file set.
fn prime(dir: &Path, entries: &[argus::corpus::CorpusEntry], cold: &[(String, String)]) {
    let cache = SccCache::with_disk(usize::MAX, dir.to_path_buf());
    for (entry, cold) in entries.iter().zip(cold) {
        assert_eq!(&analyze_memo(entry, &cache), cold, "{}: priming run differs", entry.name);
    }
    assert!(!cache_files(dir).is_empty(), "priming wrote no cache files");
}

/// After corrupting the files, a FRESH cache instance (empty memory, so
/// every probe goes to disk) must still produce cold-identical reports.
fn assert_cold_identical(
    dir: &Path,
    entries: &[argus::corpus::CorpusEntry],
    cold: &[(String, String)],
    what: &str,
) {
    let cache = SccCache::with_disk(usize::MAX, dir.to_path_buf());
    for (entry, cold) in entries.iter().zip(cold) {
        assert_eq!(
            &analyze_memo(entry, &cache),
            cold,
            "{}: report differs after {what}",
            entry.name
        );
    }
}

/// Every way a cache file can rot — truncation at any structural
/// boundary, bit flips in header and payload, a wrong schema version,
/// emptiness, garbage — must degrade to a silent miss.
#[test]
fn corrupted_disk_cache_falls_back_to_cold() {
    let dir = scratch_dir("corrupt");
    let entries = light_entries();
    let cold: Vec<_> = entries.iter().map(analyze_cold).collect();

    // Truncations: at offsets spanning magic, header, and payload.
    prime(&dir, &entries, &cold);
    for path in cache_files(&dir) {
        let bytes = std::fs::read(&path).unwrap();
        let cut = [0, 4, 8, 12, 20, 27, bytes.len() / 2, bytes.len().saturating_sub(1)];
        let keep = cut[(bytes.len() / 7) % cut.len()].min(bytes.len());
        std::fs::write(&path, &bytes[..keep]).unwrap();
    }
    assert_cold_identical(&dir, &entries, &cold, "truncation");

    // Bit flips: one flipped bit somewhere in every file (position varies
    // per file: header on short offsets, payload on long ones).
    prime(&dir, &entries, &cold);
    for (i, path) in cache_files(&dir).iter().enumerate() {
        let mut bytes = std::fs::read(path).unwrap();
        let pos = (i * 13) % bytes.len();
        bytes[pos] ^= 1 << (i % 8);
        std::fs::write(path, &bytes).unwrap();
    }
    assert_cold_identical(&dir, &entries, &cold, "bit flip");

    // Wrong schema version: a future/past argus wrote these files.
    prime(&dir, &entries, &cold);
    for path in cache_files(&dir) {
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
    }
    assert_cold_identical(&dir, &entries, &cold, "wrong schema version");

    // Empty and garbage files, plus an alien file that was never ours.
    prime(&dir, &entries, &cold);
    for (i, path) in cache_files(&dir).iter().enumerate() {
        if i % 2 == 0 {
            std::fs::write(path, b"").unwrap();
        } else {
            std::fs::write(path, vec![0xAB; 64 + i]).unwrap();
        }
    }
    std::fs::write(dir.join("00000000deadbeef.argusscc"), b"not a cache entry").unwrap();
    assert_cold_identical(&dir, &entries, &cold, "empty/garbage files");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Several writers (the CLI and `argus serve` sharing one `--cache-dir`)
/// racing on the same directory must not corrupt it: every concurrent
/// report and every later read of the directory stays cold-identical.
#[test]
fn concurrent_writers_share_a_cache_dir_safely() {
    let dir = scratch_dir("concurrent");
    let entries = light_entries();
    let cold: Vec<_> = entries.iter().map(analyze_cold).collect();

    std::thread::scope(|scope| {
        for worker in 0..4 {
            let dir = &dir;
            let entries = &entries;
            let cold = &cold;
            scope.spawn(move || {
                // Each worker is its own process stand-in: a private
                // in-memory cache over the shared directory.
                let cache = SccCache::with_disk(usize::MAX, dir.clone());
                for round in 0..2 {
                    for i in 0..entries.len() {
                        let idx = (i + worker + round) % entries.len();
                        assert_eq!(
                            analyze_memo(&entries[idx], &cache),
                            cold[idx],
                            "{}: concurrent-writer report diverges (worker {worker})",
                            entries[idx].name
                        );
                    }
                }
            });
        }
    });

    // No stray temp files may survive the races.
    let strays: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_none_or(|x| x != "argusscc"))
        .collect();
    assert!(strays.is_empty(), "leftover temp files after concurrent writes: {strays:?}");

    // A fresh reader of the shared directory sees only valid entries.
    assert_cold_identical(&dir, &entries, &cold, "concurrent writes");
    let _ = std::fs::remove_dir_all(&dir);
}
