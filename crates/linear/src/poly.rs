//! Closed convex polyhedra over ℚⁿ, in constraint representation.
//!
//! This is the abstract domain used by `argus-sizerel` to infer the
//! inter-argument size relations the paper imports from \[VG90\] (e.g.
//! `append: a1 + a2 = a3`). Dimensions are `0..dim`, each standing for one
//! argument-size variable. Operations:
//!
//! * meet (conjunction) — concatenate constraints;
//! * projection — Fourier–Motzkin ([`crate::fm`]);
//! * inclusion and emptiness — exact LP ([`crate::simplex`]);
//! * convex hull — the λ-combination encoding projected by FM
//!   (Benoy–King: the hull of P₁ ∪ P₂ is the projection of
//!   `x = y + z, y ∈ σ₁·P₁, z ∈ σ₂·P₂, σ₁ + σ₂ = 1, σ ≥ 0`);
//! * widening — the standard constraint widening (keep the constraints of
//!   the old polyhedron that the new one still entails), which guarantees
//!   fixpoint termination.
//!
//! The hull computed this way is the *closure* of the convex hull, which is
//! the correct over-approximation for abstract interpretation.

use crate::expr::{Constraint, ConstraintSystem, LinExpr, Var};
use crate::fm::{self, FmResult};
use crate::rat::Rat;
use crate::simplex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Row cap for the lifted FM projection inside [`Poly::hull`]; past it the
/// hull falls back to the sound weak join rather than risking FM's
/// worst-case blowup.
pub const HULL_ROW_CAP: usize = 120;

/// A closed convex polyhedron over dimensions `0..dim`.
///
/// An explicitly-empty polyhedron is represented by `empty = true`; the
/// constraint system is then irrelevant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    dim: usize,
    sys: ConstraintSystem,
    empty: bool,
}

impl Poly {
    /// The full space ℚ₊ⁿ restricted by nothing (note: *not* restricted to
    /// nonnegatives; callers wanting size semantics should use
    /// [`Poly::nonneg_universe`]).
    pub fn universe(dim: usize) -> Poly {
        Poly { dim, sys: ConstraintSystem::new(), empty: false }
    }

    /// The nonnegative orthant `xᵢ ≥ 0` for all dimensions — the natural
    /// starting point for argument sizes, which are sizes of terms and hence
    /// nonnegative (paper §2.2).
    pub fn nonneg_universe(dim: usize) -> Poly {
        let mut sys = ConstraintSystem::new();
        for v in 0..dim {
            sys.push(Constraint::nonneg(v));
        }
        Poly { dim, sys, empty: false }
    }

    /// The empty polyhedron.
    pub fn empty(dim: usize) -> Poly {
        Poly { dim, sys: ConstraintSystem::new(), empty: true }
    }

    /// Build from constraints (variables must be `< dim`).
    pub fn from_constraints(dim: usize, sys: ConstraintSystem) -> Poly {
        debug_assert!(sys.vars().iter().all(|&v| v < dim));
        let mut p = Poly { dim, sys, empty: false };
        if p.compute_is_empty() {
            p.empty = true;
        }
        p
    }

    /// Reassemble a polyhedron from parts previously observed via
    /// [`Poly::dim`], [`Poly::constraints`] and [`Poly::is_empty`],
    /// trusting `empty` instead of re-running the feasibility LP. Intended
    /// for deserializing polyhedra this library produced (e.g. the
    /// incremental analyzer's on-disk cache); handing it an inconsistent
    /// `empty` flag yields a polyhedron that misreports emptiness.
    pub fn from_raw_parts(dim: usize, sys: ConstraintSystem, empty: bool) -> Poly {
        debug_assert!(sys.vars().iter().all(|&v| v < dim));
        Poly { dim, sys, empty }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraints (meaningless if [`Poly::is_empty`]).
    pub fn constraints(&self) -> &ConstraintSystem {
        &self.sys
    }

    /// True iff the polyhedron has no points.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// True iff the polyhedron is all of ℚⁿ.
    pub fn is_universe(&self) -> bool {
        !self.empty && self.sys.simplify_trivial().map(|s| s.is_empty()).unwrap_or(false)
    }

    fn compute_is_empty(&self) -> bool {
        simplex::feasible_point(&self.sys, &BTreeSet::new()).is_none()
    }

    /// Membership test.
    pub fn contains_point(&self, point: &BTreeMap<Var, Rat>) -> bool {
        !self.empty && self.sys.holds_at(point)
    }

    /// A sample point, if nonempty.
    pub fn sample_point(&self) -> Option<BTreeMap<Var, Rat>> {
        if self.empty {
            None
        } else {
            simplex::feasible_point(&self.sys, &BTreeSet::new())
        }
    }

    /// Intersection.
    pub fn meet(&self, other: &Poly) -> Poly {
        assert_eq!(self.dim, other.dim, "dimension mismatch in meet");
        if self.empty || other.empty {
            return Poly::empty(self.dim);
        }
        let mut sys = self.sys.clone();
        sys.extend(&other.sys);
        Poly::from_constraints(self.dim, sys.dedup())
    }

    /// Add a single constraint.
    pub fn add_constraint(&self, c: Constraint) -> Poly {
        if self.empty {
            return self.clone();
        }
        let mut sys = self.sys.clone();
        sys.push(c);
        Poly::from_constraints(self.dim, sys)
    }

    /// Inclusion test: `self ⊆ other`.
    pub fn includes_in(&self, other: &Poly) -> bool {
        assert_eq!(self.dim, other.dim, "dimension mismatch in inclusion");
        if self.empty {
            return true;
        }
        if other.empty {
            return false;
        }
        other.sys.constraints().iter().all(|c| simplex::is_implied(&self.sys, &BTreeSet::new(), c))
    }

    /// Semantic equality (mutual inclusion).
    pub fn same_set(&self, other: &Poly) -> bool {
        self.includes_in(other) && other.includes_in(self)
    }

    /// Project onto a subset of dimensions, *keeping the dimension count*:
    /// constraints on dropped dimensions are existentially quantified away
    /// and the dropped dimensions become unconstrained.
    pub fn forget(&self, drop: &BTreeSet<Var>) -> Poly {
        if self.empty {
            return self.clone();
        }
        let keep: BTreeSet<Var> = (0..self.dim).filter(|v| !drop.contains(v)).collect();
        match fm::project_onto(&self.sys, &keep) {
            FmResult::Projected(sys) => Poly { dim: self.dim, sys, empty: false },
            FmResult::Infeasible => Poly::empty(self.dim),
        }
    }

    /// Project onto the first `new_dim` dimensions, dropping the rest and
    /// shrinking the space.
    pub fn project_prefix(&self, new_dim: usize) -> Poly {
        assert!(new_dim <= self.dim);
        if self.empty {
            return Poly::empty(new_dim);
        }
        let keep: BTreeSet<Var> = (0..new_dim).collect();
        match fm::project_onto(&self.sys, &keep) {
            FmResult::Projected(sys) => Poly { dim: new_dim, sys, empty: false },
            FmResult::Infeasible => Poly::empty(new_dim),
        }
    }

    /// Embed into a larger space (new trailing dimensions unconstrained).
    pub fn extend_dim(&self, new_dim: usize) -> Poly {
        assert!(new_dim >= self.dim);
        Poly { dim: new_dim, sys: self.sys.clone(), empty: self.empty }
    }

    /// Rename dimensions through `map` (entries absent map to themselves).
    pub fn rename(&self, map: &BTreeMap<Var, Var>, new_dim: usize) -> Poly {
        Poly { dim: new_dim, sys: self.sys.rename(map), empty: self.empty }
    }

    /// Closed convex hull of the union (the abstract `join`), with the
    /// [`HULL_ROW_CAP`] row cap: past it, the cheap weak join stands in.
    pub fn hull(&self, other: &Poly) -> Poly {
        let cfg = fm::FmConfig { max_rows: HULL_ROW_CAP, ..fm::FmConfig::default() };
        self.hull_with(other, &cfg, &mut fm::FmStats::default())
    }

    /// [`Poly::hull`] under an explicit FM configuration (tier, row cap, LP
    /// budget all caller-controlled), accumulating the FM work into
    /// `stats`. Exceeding `cfg.max_rows` falls back to the weak join.
    pub fn hull_with(&self, other: &Poly, cfg: &fm::FmConfig, stats: &mut fm::FmStats) -> Poly {
        assert_eq!(self.dim, other.dim, "dimension mismatch in hull");
        if self.empty {
            return other.clone();
        }
        if other.empty {
            return self.clone();
        }
        let n = self.dim;
        // Variable layout in the big system:
        //   0..n        : x (result)
        //   n..2n       : y (σ1-scaled point of self)
        //   2n..3n      : z (σ2-scaled point of other)
        //   3n          : σ1
        //   3n + 1      : σ2
        let y0 = n;
        let z0 = 2 * n;
        let s1 = 3 * n;
        let s2 = 3 * n + 1;

        let mut big = ConstraintSystem::new();
        // x_i = y_i + z_i
        for i in 0..n {
            big.push(Constraint::eq(
                LinExpr::var(i),
                &LinExpr::var(y0 + i) + &LinExpr::var(z0 + i),
            ));
        }
        // σ1 + σ2 = 1, σ ≥ 0
        big.push(Constraint::eq(
            &LinExpr::var(s1) + &LinExpr::var(s2),
            LinExpr::constant(Rat::one()),
        ));
        big.push(Constraint::nonneg(s1));
        big.push(Constraint::nonneg(s2));
        // Scaled copies: for a constraint Σa·x + c REL 0 of self,
        // emit Σa·y + c·σ1 REL 0 (homogenization).
        let scale_into = |sys: &ConstraintSystem, base: Var, sigma: Var| {
            let mut out = Vec::new();
            for c in sys.constraints() {
                let mut e = LinExpr::zero();
                for (v, a) in c.expr.terms() {
                    e.add_term(base + v, a.clone());
                }
                e.add_term(sigma, c.expr.constant_term().clone());
                out.push(Constraint { expr: e, rel: c.rel });
            }
            out
        };
        for c in scale_into(&self.sys, y0, s1) {
            big.push(c);
        }
        for c in scale_into(&other.sys, z0, s2) {
            big.push(c);
        }

        let keep: BTreeSet<Var> = (0..n).collect();
        // The row cap guards against FM's blowup; past it, fall back to the
        // cheap weak join, which is sound (it contains the hull) and still
        // keeps the invariants that appear as rows of either argument.
        match fm::project_onto_with(&big, &keep, cfg, stats) {
            Ok(FmResult::Projected(sys)) => Poly::from_constraints(n, sys.dedup()),
            Ok(FmResult::Infeasible) => Poly::empty(n),
            Err(_) => self.weak_join(other),
        }
    }

    /// A cheap over-approximation of [`Poly::hull`]: keep each constraint
    /// of either polyhedron that the other one also satisfies. Any point of
    /// `self ∪ other` satisfies every kept row, so the result contains the
    /// hull; it may be strictly larger (a valid join for abstract
    /// interpretation, used when exact hull computation is too expensive).
    pub fn weak_join(&self, other: &Poly) -> Poly {
        assert_eq!(self.dim, other.dim, "dimension mismatch in weak_join");
        if self.empty {
            return other.clone();
        }
        if other.empty {
            return self.clone();
        }
        let mut rows = ConstraintSystem::new();
        for c in self.sys.constraints() {
            if simplex::is_implied(&other.sys, &BTreeSet::new(), c) {
                rows.push(c.clone());
            }
        }
        for c in other.sys.constraints() {
            if simplex::is_implied(&self.sys, &BTreeSet::new(), c) {
                rows.push(c.clone());
            }
        }
        Poly { dim: self.dim, sys: rows.dedup(), empty: false }
    }

    /// Standard widening: keep those constraints of `self` (the previous
    /// iterate) that `other` (the next iterate) still satisfies. Requires
    /// `self ⊆ other` to be meaningful, which the fixpoint engine ensures by
    /// joining first.
    pub fn widen(&self, other: &Poly) -> Poly {
        assert_eq!(self.dim, other.dim, "dimension mismatch in widen");
        if self.empty {
            return other.clone();
        }
        if other.empty {
            // Should not happen after a join, but be safe.
            return self.clone();
        }
        let mut kept = ConstraintSystem::new();
        for c in self.sys.constraints() {
            if simplex::is_implied(&other.sys, &BTreeSet::new(), c) {
                kept.push(c.clone());
            }
        }
        Poly { dim: self.dim, sys: kept, empty: false }
    }

    /// Remove redundant constraints (each one implied by the others) to get
    /// a small canonical-ish representation.
    ///
    /// LP-based minimization is quadratic in the row count; beyond a
    /// threshold only the cheap syntactic dedup is applied (the result is
    /// the same set, just less canonical).
    pub fn minimized(&self) -> Poly {
        if self.empty {
            return self.clone();
        }
        let deduped = self.sys.dedup();
        if deduped.len() > 160 {
            return Poly { dim: self.dim, sys: deduped, empty: false };
        }
        let rows = deduped.constraints().to_vec();
        let mut kept: Vec<Constraint> = rows.clone();
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i].clone();
            let others = ConstraintSystem::from_constraints(
                kept.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, c)| c.clone()).collect(),
            );
            if simplex::is_implied(&others, &BTreeSet::new(), &candidate) {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        Poly { dim: self.dim, sys: ConstraintSystem::from_constraints(kept), empty: false }
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            write!(f, "⊥ (empty, dim {})", self.dim)
        } else if self.sys.is_empty() {
            write!(f, "⊤ (universe, dim {})", self.dim)
        } else {
            write!(f, "{}", self.sys)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    fn pt(pairs: &[(Var, i64)]) -> BTreeMap<Var, Rat> {
        pairs.iter().map(|&(v, x)| (v, r(x, 1))).collect()
    }

    /// The segment from (a, b) to (c, d) as a 2-D polyhedron... here simpler:
    /// an axis box [lo0, hi0] × [lo1, hi1].
    fn bbox(lo0: i64, hi0: i64, lo1: i64, hi1: i64) -> Poly {
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(0), LinExpr::constant(r(lo0, 1))));
        sys.push(Constraint::le(LinExpr::var(0), LinExpr::constant(r(hi0, 1))));
        sys.push(Constraint::ge(LinExpr::var(1), LinExpr::constant(r(lo1, 1))));
        sys.push(Constraint::le(LinExpr::var(1), LinExpr::constant(r(hi1, 1))));
        Poly::from_constraints(2, sys)
    }

    #[test]
    fn emptiness() {
        assert!(Poly::empty(3).is_empty());
        assert!(!Poly::universe(3).is_empty());
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(0), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::le(LinExpr::var(0), LinExpr::constant(r(0, 1))));
        assert!(Poly::from_constraints(1, sys).is_empty());
    }

    #[test]
    fn meet_boxes() {
        let a = bbox(0, 2, 0, 2);
        let b = bbox(1, 3, 1, 3);
        let m = a.meet(&b);
        assert!(m.contains_point(&pt(&[(0, 1), (1, 2)])));
        assert!(!m.contains_point(&pt(&[(0, 0), (1, 0)])));
        assert!(m.includes_in(&a) && m.includes_in(&b));
    }

    #[test]
    fn meet_disjoint_is_empty() {
        let a = bbox(0, 1, 0, 1);
        let b = bbox(2, 3, 2, 3);
        assert!(a.meet(&b).is_empty());
    }

    #[test]
    fn inclusion() {
        let small = bbox(1, 2, 1, 2);
        let large = bbox(0, 3, 0, 3);
        assert!(small.includes_in(&large));
        assert!(!large.includes_in(&small));
        assert!(Poly::empty(2).includes_in(&small));
        assert!(!small.includes_in(&Poly::empty(2)));
        assert!(small.includes_in(&Poly::universe(2)));
    }

    #[test]
    fn hull_of_boxes_contains_both_and_midpoints() {
        let a = bbox(0, 1, 0, 1);
        let b = bbox(3, 4, 3, 4);
        let h = a.hull(&b);
        assert!(a.includes_in(&h));
        assert!(b.includes_in(&h));
        // Midpoint of (0,0) and (4,4) is (2,2) — in the hull.
        assert!(h.contains_point(&pt(&[(0, 2), (1, 2)])));
        // But (0, 4) is not (the hull of these diagonal boxes is a band).
        assert!(!h.contains_point(&pt(&[(0, 0), (1, 4)])));
    }

    #[test]
    fn hull_with_empty_is_identity() {
        let a = bbox(0, 1, 0, 1);
        assert!(a.hull(&Poly::empty(2)).same_set(&a));
        assert!(Poly::empty(2).hull(&a).same_set(&a));
    }

    #[test]
    fn hull_preserves_shared_equalities() {
        // Both polyhedra satisfy x0 = x1; the hull must too. This mirrors
        // the sizerel use case: both append clauses satisfy a1 + a2 = a3.
        let mk = |c: i64| {
            let mut sys = ConstraintSystem::new();
            sys.push(Constraint::eq(LinExpr::var(0), LinExpr::var(1)));
            sys.push(Constraint::eq(LinExpr::var(0), LinExpr::constant(r(c, 1))));
            Poly::from_constraints(2, sys)
        };
        let h = mk(1).hull(&mk(5));
        let eq = Constraint::eq(LinExpr::var(0), LinExpr::var(1));
        assert!(simplex::is_implied(h.constraints(), &BTreeSet::new(), &eq));
        assert!(h.contains_point(&pt(&[(0, 3), (1, 3)])));
        assert!(!h.contains_point(&pt(&[(0, 3), (1, 4)])));
    }

    #[test]
    fn forget_drops_dimension_information() {
        let a = bbox(1, 2, 5, 6);
        let f = a.forget(&[1].into_iter().collect());
        assert!(f.contains_point(&pt(&[(0, 1), (1, 100)])));
        assert!(!f.contains_point(&pt(&[(0, 0), (1, 5)])));
    }

    #[test]
    fn project_prefix_shrinks_space() {
        let a = bbox(1, 2, 5, 6);
        let p = a.project_prefix(1);
        assert_eq!(p.dim(), 1);
        assert!(p.contains_point(&pt(&[(0, 2)])));
        assert!(!p.contains_point(&pt(&[(0, 3)])));
    }

    #[test]
    fn widen_keeps_stable_constraints() {
        // Old: 0 <= x <= 1. New: 0 <= x <= 2. Widening keeps x >= 0, drops
        // the unstable upper bound.
        let mut old_sys = ConstraintSystem::new();
        old_sys.push(Constraint::nonneg(0));
        old_sys.push(Constraint::le(LinExpr::var(0), LinExpr::constant(r(1, 1))));
        let old = Poly::from_constraints(1, old_sys);
        let mut new_sys = ConstraintSystem::new();
        new_sys.push(Constraint::nonneg(0));
        new_sys.push(Constraint::le(LinExpr::var(0), LinExpr::constant(r(2, 1))));
        let new = Poly::from_constraints(1, new_sys);
        let w = old.widen(&new);
        assert!(w.contains_point(&pt(&[(0, 100)])));
        assert!(!w.contains_point(&pt(&[(0, -1)])));
    }

    #[test]
    fn widening_sequence_stabilizes() {
        // Iterating widen over growing boxes reaches a fixpoint quickly.
        let mut cur = bbox(0, 0, 0, 0);
        for k in 1..10 {
            let next = cur.hull(&bbox(0, k, 0, k));
            let widened = cur.widen(&next);
            if widened.same_set(&cur) {
                // Stable; and the stable value must include all iterates.
                assert!(bbox(0, 9, 0, 9).includes_in(&widened));
                return;
            }
            cur = widened;
        }
        // Must have stabilized within the loop: widening drops at least one
        // constraint per non-stable step and never adds any.
        let final_next = cur.hull(&bbox(0, 100, 0, 100));
        assert!(cur.widen(&final_next).same_set(&cur));
    }

    #[test]
    fn minimized_removes_redundant_rows() {
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::le(LinExpr::var(0), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::le(LinExpr::var(0), LinExpr::constant(r(2, 1)))); // redundant
        sys.push(Constraint::nonneg(0));
        let p = Poly::from_constraints(1, sys);
        let m = p.minimized();
        assert_eq!(m.constraints().len(), 2);
        assert!(m.same_set(&p));
    }

    #[test]
    fn nonneg_universe() {
        let p = Poly::nonneg_universe(2);
        assert!(p.contains_point(&pt(&[(0, 0), (1, 5)])));
        assert!(!p.contains_point(&pt(&[(0, -1), (1, 0)])));
    }

    #[test]
    fn rename_dims() {
        let a = bbox(1, 2, 5, 6);
        let map: BTreeMap<Var, Var> = [(0, 1), (1, 0)].into_iter().collect();
        let swapped = a.rename(&map, 2);
        assert!(swapped.contains_point(&pt(&[(0, 5), (1, 1)])));
        assert!(!swapped.contains_point(&pt(&[(0, 1), (1, 5)])));
    }
}
