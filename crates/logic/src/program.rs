//! Atoms, literals, rules, and programs.
//!
//! The collection of all rules for one predicate is the *logic procedure*
//! for that predicate; the complete rule set is the IDB (paper §2). EDB
//! predicates are those that never appear in a rule head.

use crate::intern::Sym;
use crate::span::SpanSlot;
use crate::term::Term;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A predicate identity: name plus arity. `append/3` and `append/2` are
/// different predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredKey {
    /// Predicate name.
    pub name: Sym,
    /// Number of arguments.
    pub arity: usize,
}

impl PredKey {
    /// Build a key.
    pub fn new(name: impl Into<Sym>, arity: usize) -> PredKey {
        PredKey { name: name.into(), arity }
    }
}

impl fmt::Display for PredKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// An atomic formula `p(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Predicate name.
    pub name: Sym,
    /// Argument terms.
    pub args: Vec<Term>,
    /// Source span (comparison-transparent; empty for synthesized atoms).
    pub span: SpanSlot,
}

impl Atom {
    /// Build an atom.
    pub fn new(name: impl Into<Sym>, args: Vec<Term>) -> Atom {
        Atom { name: name.into(), args, span: SpanSlot::none() }
    }

    /// The same atom carrying `span`.
    pub fn with_span(mut self, span: SpanSlot) -> Atom {
        self.span = span;
        self
    }

    /// The predicate key of this atom.
    pub fn key(&self) -> PredKey {
        PredKey { name: self.name, arity: self.args.len() }
    }

    /// Distinct variables, first-occurrence order.
    pub fn vars(&self) -> Vec<Sym> {
        let mut occ = Vec::new();
        self.vars_into(&mut occ);
        occ
    }

    /// [`Atom::vars`] into a caller-owned buffer (appended, deduplicated
    /// against existing contents).
    pub fn vars_into(&self, out: &mut Vec<Sym>) {
        for a in &self.args {
            a.vars_into(out);
        }
    }

    /// Rename all variables with a suffix.
    pub fn rename_suffix(&self, suffix: &str) -> Atom {
        Atom {
            name: self.name,
            args: self.args.iter().map(|t| t.rename_suffix(suffix)).collect(),
            span: self.span,
        }
    }

    /// True iff every argument is a distinct variable (a "most general"
    /// atom), which predicate splitting tries to establish for subgoals.
    pub fn is_most_general(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.args.iter().all(|t| match t {
            Term::Var(v) => seen.insert(*v),
            _ => false,
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            return write!(f, "{}", self.name);
        }
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: a possibly negated atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The atom.
    pub atom: Atom,
    /// Polarity: `true` for a positive subgoal, `false` for `\+ atom`.
    pub positive: bool,
    /// Source span, including a leading `\+` (comparison-transparent).
    pub span: SpanSlot,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        let span = atom.span;
        Literal { atom, positive: true, span }
    }

    /// A negative literal.
    pub fn neg(atom: Atom) -> Literal {
        let span = atom.span;
        Literal { atom, positive: false, span }
    }

    /// The same literal carrying `span`.
    pub fn with_span(mut self, span: SpanSlot) -> Literal {
        self.span = span;
        self
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.atom)
        } else {
            write!(f, "\\+ {}", self.atom)
        }
    }
}

/// A rule `head :- body` (a fact when the body is empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body literals, in left-to-right execution order.
    pub body: Vec<Literal>,
    /// Source span of the whole clause, including the terminating `.`
    /// (comparison-transparent).
    pub span: SpanSlot,
}

impl Rule {
    /// A fact.
    pub fn fact(head: Atom) -> Rule {
        Rule { head, body: Vec::new(), span: SpanSlot::none() }
    }

    /// A rule with a body.
    pub fn new(head: Atom, body: Vec<Literal>) -> Rule {
        Rule { head, body, span: SpanSlot::none() }
    }

    /// The same rule carrying `span`.
    pub fn with_span(mut self, span: SpanSlot) -> Rule {
        self.span = span;
        self
    }

    /// Distinct variables over head and body, first occurrence order.
    pub fn vars(&self) -> Vec<Sym> {
        let mut occ = Vec::new();
        self.head.vars_into(&mut occ);
        for l in &self.body {
            l.atom.vars_into(&mut occ);
        }
        occ
    }

    /// Rename all variables apart with a suffix.
    pub fn rename_suffix(&self, suffix: &str) -> Rule {
        Rule {
            head: self.head.rename_suffix(suffix),
            body: self
                .body
                .iter()
                .map(|l| Literal {
                    atom: l.atom.rename_suffix(suffix),
                    positive: l.positive,
                    span: l.span,
                })
                .collect(),
            span: self.span,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A logic program: an ordered collection of rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Rules in source order (order matters for Prolog-style execution).
    pub rules: Vec<Rule>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Build from rules.
    pub fn from_rules(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// All predicates that appear in some head (the IDB predicates).
    pub fn idb_predicates(&self) -> BTreeSet<PredKey> {
        self.rules.iter().map(|r| r.head.key()).collect()
    }

    /// All predicates appearing anywhere.
    pub fn all_predicates(&self) -> BTreeSet<PredKey> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            out.insert(r.head.key());
            for l in &r.body {
                out.insert(l.atom.key());
            }
        }
        out
    }

    /// Predicates that appear only in bodies: EDB / builtin predicates.
    pub fn edb_predicates(&self) -> BTreeSet<PredKey> {
        let idb = self.idb_predicates();
        self.all_predicates().into_iter().filter(|p| !idb.contains(p)).collect()
    }

    /// The rules whose head is `pred` — the logic procedure for `pred`.
    ///
    /// This is a linear scan of the whole rule list; analysis passes that
    /// look up many procedures should build a [`ProcIndex`] once instead.
    pub fn procedure(&self, pred: &PredKey) -> Vec<&Rule> {
        self.rules.iter().filter(|r| &r.head.key() == pred).collect()
    }

    /// Append another program's rules.
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// An index from predicate to the rule positions of its procedure.
///
/// [`Program::procedure`] scans every rule; on the million-clause
/// substrate the analysis passes call it once per worklist pop, turning
/// the whole pipeline quadratic. Building this index once makes every
/// lookup O(1) (predicate keys hash by interned-symbol id).
#[derive(Debug, Clone, Default)]
pub struct ProcIndex {
    by_pred: HashMap<PredKey, Vec<usize>>,
}

impl ProcIndex {
    /// Index `program`'s rules by head predicate.
    pub fn build(program: &Program) -> ProcIndex {
        let mut by_pred: HashMap<PredKey, Vec<usize>> = HashMap::new();
        for (i, r) in program.rules.iter().enumerate() {
            by_pred.entry(r.head.key()).or_default().push(i);
        }
        ProcIndex { by_pred }
    }

    /// Rule positions (in source order) of `pred`'s procedure.
    pub fn rule_indices(&self, pred: &PredKey) -> &[usize] {
        self.by_pred.get(pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The procedure for `pred`, equivalent to [`Program::procedure`].
    pub fn procedure<'p>(&self, program: &'p Program, pred: &PredKey) -> Vec<&'p Rule> {
        self.rule_indices(pred).iter().map(|&i| &program.rules[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn append_program() -> Program {
        // append([], Ys, Ys).
        // append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
        let r1 =
            Rule::fact(Atom::new("append", vec![Term::nil(), Term::var("Ys"), Term::var("Ys")]));
        let r2 = Rule::new(
            Atom::new(
                "append",
                vec![
                    Term::cons(Term::var("X"), Term::var("Xs")),
                    Term::var("Ys"),
                    Term::cons(Term::var("X"), Term::var("Zs")),
                ],
            ),
            vec![Literal::pos(Atom::new(
                "append",
                vec![Term::var("Xs"), Term::var("Ys"), Term::var("Zs")],
            ))],
        );
        Program::from_rules(vec![r1, r2])
    }

    #[test]
    fn idb_edb_partition() {
        let mut p = append_program();
        p.rules.push(Rule::new(
            Atom::new("main", vec![Term::var("X")]),
            vec![
                Literal::pos(Atom::new("e", vec![Term::var("X")])),
                Literal::pos(Atom::new(
                    "append",
                    vec![Term::var("X"), Term::var("X"), Term::var("Y")],
                )),
            ],
        ));
        let idb = p.idb_predicates();
        assert!(idb.contains(&PredKey::new("append", 3)));
        assert!(idb.contains(&PredKey::new("main", 1)));
        let edb = p.edb_predicates();
        assert!(edb.contains(&PredKey::new("e", 1)));
        assert!(!edb.contains(&PredKey::new("append", 3)));
    }

    #[test]
    fn procedure_selects_rules() {
        let p = append_program();
        assert_eq!(p.procedure(&PredKey::new("append", 3)).len(), 2);
        assert_eq!(p.procedure(&PredKey::new("nope", 1)).len(), 0);
        let ix = ProcIndex::build(&p);
        assert_eq!(
            ix.procedure(&p, &PredKey::new("append", 3)),
            p.procedure(&PredKey::new("append", 3))
        );
        assert!(ix.procedure(&p, &PredKey::new("nope", 1)).is_empty());
    }

    #[test]
    fn rule_vars_in_order() {
        let p = append_program();
        let vs = p.rules[1].vars();
        let names: Vec<&str> = vs.iter().map(|v| v.as_str()).collect();
        assert_eq!(names, ["X", "Xs", "Ys", "Zs"]);
    }

    #[test]
    fn display_roundtrip_shape() {
        let p = append_program();
        let s = p.to_string();
        assert!(s.contains("append([], Ys, Ys)."));
        assert!(s.contains("append([X | Xs], Ys, [X | Zs]) :- append(Xs, Ys, Zs)."));
    }

    #[test]
    fn most_general_atom() {
        let a = Atom::new("p", vec![Term::var("X"), Term::var("Y")]);
        assert!(a.is_most_general());
        let b = Atom::new("p", vec![Term::var("X"), Term::var("X")]);
        assert!(!b.is_most_general());
        let c = Atom::new("p", vec![Term::atom("a")]);
        assert!(!c.is_most_general());
    }

    #[test]
    fn negative_literal_display() {
        let l = Literal::neg(Atom::new("q", vec![Term::var("X")]));
        assert_eq!(l.to_string(), "\\+ q(X)");
    }
}
