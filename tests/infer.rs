//! Integration suite for backwards termination-condition inference.
//!
//! Three layers of pinning, strongest last:
//!
//! 1. golden files fix the exact `argus infer --json` bytes on selected
//!    corpus entries, so schema drift shows up as a reviewed diff;
//! 2. the hand-checked condition table in `argus_corpus` fixes the
//!    *semantic* result for predicates whose conditions were verified
//!    against the program meaning by hand;
//! 3. the soundness gate independently confirms EVERY disjunct of EVERY
//!    inferred condition across the whole corpus: the forward analyzer
//!    proves it, the certificate checker accepts the proof, and the SLD
//!    interpreter completes bounded queries of that adornment.
//!
//! To bless an intentional JSON change: `UPDATE_GOLDEN=1 cargo test -q
//! --test infer`.

use argus::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn golden_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(rel)
}

fn check_golden(rel: &str, actual: &str) {
    let path = golden_path(rel);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create", path.display())
    });
    assert_eq!(
        expected,
        actual,
        "{} drifted; if intentional, re-bless with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Whole-corpus inference, computed once (deduped by shared source text,
/// default options) and reused by every test in this file.
fn inferred() -> &'static BTreeMap<&'static str, InferenceReport> {
    static CACHE: OnceLock<BTreeMap<&'static str, InferenceReport>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut by_source: BTreeMap<&'static str, InferenceReport> = BTreeMap::new();
        let mut out = BTreeMap::new();
        for entry in argus::corpus::corpus() {
            let report = by_source
                .entry(entry.source)
                .or_insert_with(|| {
                    let program = entry.program().unwrap();
                    infer_conditions(&program, &BackwardsOptions::default())
                })
                .clone();
            out.insert(entry.name, report);
        }
        out
    })
}

/// Golden pins of the machine-readable inference JSON: one list program
/// with a disjunctive condition, one accumulator program, one program with
/// hand-written helpers, and the mutual-recursion FM stress entry.
#[test]
fn inference_json_golden() {
    for name in ["append_bff", "perm", "reverse_acc", "mutual_fib_ring"] {
        let report = &inferred()[name];
        assert!(!report.partial, "{name}: inference hit a deadline without one configured");
        check_golden(&format!("infer/{name}.json"), &report.to_json());
    }
}

/// The hand-checked condition table must be reproduced exactly, including
/// the `append/3` headline: `arg1 bound or arg3 bound`.
#[test]
fn expected_conditions_match() {
    for (entry, spec, expected) in argus::corpus::expected_conditions() {
        let report = inferred().get(entry).unwrap_or_else(|| panic!("no entry {entry}"));
        let cond = report
            .conditions
            .iter()
            .find(|c| c.pred.to_string() == spec)
            .unwrap_or_else(|| panic!("{entry}: no condition inferred for {spec}"));
        assert_eq!(cond.condition.to_string(), expected, "{entry}: condition for {spec} drifted");
        assert!(!cond.capped, "{entry}: {spec} unexpectedly arity-capped");
    }
}

/// Zero-arity predicates get the constant conditions, rendered without
/// dangling separators.
#[test]
fn zero_arity_conditions_are_constants() {
    let program =
        argus::logic::parser::parse_program("main :- sub.\nsub.\nloop :- loop.\n").unwrap();
    let report = infer_conditions(&program, &BackwardsOptions::default());
    let get = |name: &str| {
        report
            .conditions
            .iter()
            .find(|c| c.pred == PredKey::new(name, 0))
            .unwrap_or_else(|| panic!("no condition for {name}/0"))
    };
    assert_eq!(get("main").condition.to_string(), "true");
    assert_eq!(get("sub").condition.to_string(), "true");
    assert_eq!(get("loop").condition.to_string(), "false");
}

/// The soundness gate: every disjunct of every inferred condition for
/// every corpus program is independently confirmed — forward analyzer,
/// certificate checker, and SLD interpreter all agree it terminates.
#[test]
fn corpus_conditions_are_sound() {
    let options = AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() };
    let mut checked_sources: BTreeMap<&str, ()> = BTreeMap::new();
    let mut disjuncts = 0usize;
    for entry in argus::corpus::corpus() {
        if checked_sources.insert(entry.source, ()).is_some() {
            continue; // entries sharing a program share its conditions
        }
        let program = entry.program().unwrap();
        let report = &inferred()[entry.name];
        for cond in &report.conditions {
            for adn in cond.disjunct_adornments() {
                disjuncts += 1;
                let fwd = analyze(&program, &cond.pred, adn.clone(), &options);
                assert_eq!(
                    fwd.verdict,
                    Verdict::Terminates,
                    "{}: inferred disjunct `{adn}` of {} is not forward-provable",
                    entry.name,
                    cond.pred
                );
                argus::core::verify_report(&fwd, options.norm).unwrap_or_else(|e| {
                    panic!(
                        "{}: certificate for disjunct `{adn}` of {} rejected: {e}",
                        entry.name, cond.pred
                    )
                });
                argus::fuzz::oracle::check_differential_adorned(
                    &program, &cond.pred, &adn, 300_000,
                )
                .unwrap_or_else(|e| {
                    panic!("{}: disjunct `{adn}` of {}: {e}", entry.name, cond.pred)
                });
            }
        }
    }
    assert!(disjuncts >= 50, "gate covered only {disjuncts} disjuncts — corpus shrank?");
}

/// The library-level certificate re-check (`argus infer --certify`)
/// accepts every inferred condition.
#[test]
fn certificates_recheck_across_corpus() {
    let options = AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() };
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let report = &inferred()[entry.name];
        for cond in &report.conditions {
            argus::core::check_condition(&program, cond, &options).unwrap_or_else(|e| {
                panic!("{}: condition for {} failed re-check: {e}", entry.name, cond.pred)
            });
        }
    }
}
