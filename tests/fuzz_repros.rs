//! Regression replay of every minimized fuzz reproducer.
//!
//! `argus fuzz` writes a `.pl` file under `tests/golden/fuzz-repros/` for
//! each violation that survives shrinking (see the README there for the
//! format). This test re-runs the full oracle battery on every file: once
//! the underlying bug is fixed, the reproducer must stay clean forever.

use argus::fuzz::gen::GenCase;
use argus::fuzz::oracle::{
    analysis_options, check_certificate, check_differential, check_metamorphic,
};
use argus::logic::parser::parse_program;
use argus::prelude::*;
use std::path::Path;

/// Parse the `% key: value` header lines of a reproducer.
fn header(src: &str, key: &str) -> Option<String> {
    let prefix = format!("% {key}: ");
    src.lines().find_map(|l| l.strip_prefix(&prefix).map(str::to_string))
}

fn replay(path: &Path) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let query_spec = header(&src, "query").ok_or("missing `% query:` header")?;
    let mode = header(&src, "adornment").ok_or("missing `% adornment:` header")?;
    let (name, arity) = query_spec.rsplit_once('/').ok_or("bad query spec")?;
    let query = PredKey::new(name, arity.parse::<usize>().map_err(|e| e.to_string())?);
    let adornment = Adornment::parse(&mode).ok_or("bad adornment")?;
    let program = parse_program(&src).map_err(|e| format!("parse: {e}"))?;

    let opts = analysis_options();
    let report = analyze(&program, &query, adornment.clone(), &opts);
    // FM redundancy tiers (and the projection cache) must be invisible in
    // the report — replay each reproducer at every tier and with the cache
    // off, and demand byte-identical JSON.
    let baseline = report.to_json();
    for tier in FmTier::ALL {
        for fm_cache in [true, false] {
            let variant = AnalysisOptions { fm_tier: tier, fm_cache, ..opts.clone() };
            let tiered = analyze(&program, &query, adornment.clone(), &variant);
            if tiered.to_json() != baseline {
                return Err(format!("fm tier {tier:?} (cache {fm_cache}) changed the report"));
            }
        }
    }
    if report.verdict == Verdict::Terminates {
        check_differential(&program, &query, 300_000)
            .map_err(|e| format!("differential oracle failed again: {e}"))?;
        check_certificate(&report, &opts)
            .map_err(|e| format!("certificate oracle failed again: {e}"))?;
    }
    let case = GenCase { program, query, adornment, has_growth: false, has_nonlinear: false };
    check_metamorphic(&case, &report, 0)
        .map_err(|(k, e)| format!("metamorphic oracle ({}) failed again: {e}", k.label()))?;
    Ok(())
}

#[test]
fn all_reproducers_stay_fixed() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fuzz-repros");
    let mut replayed = 0usize;
    let mut failures = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fuzz-repros directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("pl") {
            continue;
        }
        replayed += 1;
        if let Err(e) = replay(&path) {
            failures.push(format!("{}: {e}", path.display()));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    // The committed sample fixture guarantees the replayer always has work.
    assert!(replayed >= 1, "no reproducers found in {}", dir.display());
}
