//! Size-change graphs: representation, interned arena, memoized
//! composition, and the closure-based termination criterion.
//!
//! A size-change graph describes one call site: nodes are the *bound*
//! argument positions of the caller (source) and callee (target), and an
//! edge `i → j` asserts that in every reachable instance of the call,
//! `size(caller arg i) ≥ size(callee arg j)` — strictly, when the edge is
//! strict. The termination criterion (Lee–Jones–Ben-Amram, POPL 2001) is
//! decided on the composition closure of the per-call-site graphs: the
//! program part terminates iff every **idempotent** graph in the closure
//! (`g ∘ g = g`, same source and target) carries a strict self-edge
//! `i → i`. Graphs are interned in a [`GraphArena`] so the closure
//! worklist and the composition memo work over dense `u32` ids — the same
//! `Sym`/arena discipline the rest of the workspace uses.

use std::collections::{BTreeMap, HashMap};

/// Interned graph id, dense per [`GraphArena`].
pub type GraphId = u32;

/// One size-change edge between bound argument positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Bound-argument index in the source (caller) predicate.
    pub from: u16,
    /// Bound-argument index in the target (callee) predicate.
    pub to: u16,
    /// `true`: the size strictly decreases (`>`); `false`: non-strict (`≥`).
    pub strict: bool,
}

/// A size-change graph between two predicates of one SCC.
///
/// `source`/`target` are SCC-local predicate indices (assigned by the
/// analysis in member order). `edges` is sorted by `(from, to)` with at
/// most one edge per position pair — strict subsumes non-strict, so only
/// the strongest claim is kept.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Graph {
    /// SCC-local index of the caller predicate.
    pub source: u32,
    /// SCC-local index of the callee predicate.
    pub target: u32,
    /// Sorted, deduplicated edges.
    pub edges: Vec<Edge>,
}

impl Graph {
    /// Build a graph from arbitrary edge claims, keeping per position pair
    /// the strongest (strict wins) and sorting canonically.
    pub fn new(source: u32, target: u32, edges: impl IntoIterator<Item = Edge>) -> Graph {
        let mut best: BTreeMap<(u16, u16), bool> = BTreeMap::new();
        for e in edges {
            let s = best.entry((e.from, e.to)).or_insert(false);
            *s = *s || e.strict;
        }
        let edges =
            best.into_iter().map(|((from, to), strict)| Edge { from, to, strict }).collect();
        Graph { source, target, edges }
    }

    /// Does the graph carry a strict self-edge `i → i`?
    pub fn has_strict_self_edge(&self) -> bool {
        self.edges.iter().any(|e| e.strict && e.from == e.to)
    }

    /// Compose with `other` (`self.target` must equal `other.source`):
    /// edge `i → k` exists when some `j` links `i → j` and `j → k`, strict
    /// when either hop (on the *best* path) is strict.
    pub fn compose(&self, other: &Graph) -> Graph {
        debug_assert_eq!(self.target, other.source, "composition mismatch");
        let mut best: BTreeMap<(u16, u16), bool> = BTreeMap::new();
        for a in &self.edges {
            for b in &other.edges {
                if a.to != b.from {
                    continue;
                }
                let s = best.entry((a.from, b.to)).or_insert(false);
                *s = *s || a.strict || b.strict;
            }
        }
        let edges =
            best.into_iter().map(|((from, to), strict)| Edge { from, to, strict }).collect();
        Graph { source: self.source, target: other.target, edges }
    }
}

/// Deterministic counters of one arena's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArenaStats {
    /// Graphs interned (distinct graphs resident).
    pub graphs: u64,
    /// Compositions computed (memo misses).
    pub compositions: u64,
    /// Compositions answered from the memo.
    pub memo_hits: u64,
}

/// Interning arena for size-change graphs with a memoized composition
/// table over graph ids. All iteration the analysis performs is over
/// insertion-ordered vectors, so results are deterministic regardless of
/// the hash maps' internal layout.
#[derive(Debug, Default)]
pub struct GraphArena {
    graphs: Vec<Graph>,
    ids: HashMap<Graph, GraphId>,
    memo: HashMap<(GraphId, GraphId), GraphId>,
    /// Lifetime counters.
    pub stats: ArenaStats,
}

impl GraphArena {
    /// Fresh empty arena.
    pub fn new() -> GraphArena {
        GraphArena::default()
    }

    /// Intern `g`, returning its id (existing id if already present).
    pub fn intern(&mut self, g: Graph) -> GraphId {
        if let Some(&id) = self.ids.get(&g) {
            return id;
        }
        let id = self.graphs.len() as GraphId;
        self.ids.insert(g.clone(), id);
        self.graphs.push(g);
        self.stats.graphs += 1;
        id
    }

    /// The graph behind `id`.
    pub fn get(&self, id: GraphId) -> &Graph {
        &self.graphs[id as usize]
    }

    /// Number of interned graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Compose two interned graphs, memoized on the id pair.
    pub fn compose_ids(&mut self, a: GraphId, b: GraphId) -> GraphId {
        if let Some(&id) = self.memo.get(&(a, b)) {
            self.stats.memo_hits += 1;
            return id;
        }
        self.stats.compositions += 1;
        let g = self.get(a).compose(self.get(b));
        let id = self.intern(g);
        self.memo.insert((a, b), id);
        id
    }
}

/// The composition closure of `initial`: the least set containing the
/// initial graphs and closed under composition of source/target-compatible
/// pairs. Returned in deterministic first-discovery order.
pub fn closure(arena: &mut GraphArena, initial: &[GraphId]) -> Vec<GraphId> {
    let mut out: Vec<GraphId> = Vec::new();
    let mut seen: HashMap<GraphId, ()> = HashMap::new();
    for &id in initial {
        if seen.insert(id, ()).is_none() {
            out.push(id);
        }
    }
    let mut i = 0;
    while i < out.len() {
        let g = out[i];
        // Compose with everything discovered so far (both directions);
        // iterate by index so newly discovered graphs join the frontier.
        for j in 0..=i {
            let h = out[j];
            for (a, b) in [(g, h), (h, g)] {
                if arena.get(a).target != arena.get(b).source {
                    continue;
                }
                let c = arena.compose_ids(a, b);
                if seen.insert(c, ()).is_none() {
                    out.push(c);
                }
            }
        }
        i += 1;
    }
    out
}

/// The size-change termination criterion over a closed set: every
/// idempotent graph (`g ∘ g = g`, `source == target`) must carry a strict
/// self-edge. Returns the first offending graph id in closure order, or
/// `None` when the criterion holds. `idempotents` counts the idempotent
/// graphs examined.
pub fn criterion(
    arena: &mut GraphArena,
    closed: &[GraphId],
    idempotents: &mut u64,
) -> Option<GraphId> {
    for &id in closed {
        let g = arena.get(id);
        if g.source != g.target {
            continue;
        }
        if arena.compose_ids(id, id) != id {
            continue;
        }
        *idempotents += 1;
        if !arena.get(id).has_strict_self_edge() {
            return Some(id);
        }
    }
    None
}

/// An independent decision procedure used by the property tests: for every
/// cyclic graph `g` in the closure, iterate `g, g², g⁴, …` until the power
/// sequence reaches an idempotent (it must — the closure is finite), and
/// require a strict self-edge there. Equivalent to [`criterion`] on closed
/// sets; deliberately structured differently so the two can cross-check
/// each other.
pub fn criterion_by_powers(arena: &mut GraphArena, closed: &[GraphId]) -> bool {
    for &id in closed {
        let g = arena.get(id);
        if g.source != g.target {
            continue;
        }
        let mut p = id;
        // The interned-id sequence p, p², p⁴, … lives in a finite set and
        // squaring is deterministic, so it must eventually cycle; an
        // idempotent appears as a fixed point of squaring. Bound the walk
        // defensively anyway.
        for _ in 0..64 {
            let q = arena.compose_ids(p, p);
            if q == p {
                break;
            }
            p = q;
        }
        if arena.compose_ids(p, p) == p && !arena.get(p).has_strict_self_edge() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(from: u16, to: u16, strict: bool) -> Edge {
        Edge { from, to, strict }
    }

    #[test]
    fn compose_prefers_strict_paths() {
        // Two paths 0→0: one strict via 1, one non-strict via 0.
        let g = Graph::new(0, 0, [e(0, 0, false), e(0, 1, true)]);
        let h = Graph::new(0, 0, [e(0, 0, false), e(1, 0, false)]);
        let c = g.compose(&h);
        assert_eq!(c.edges, vec![e(0, 0, true)]);
    }

    #[test]
    fn intern_dedups_and_memoizes() {
        let mut arena = GraphArena::new();
        let a = arena.intern(Graph::new(0, 0, [e(0, 0, true)]));
        let b = arena.intern(Graph::new(0, 0, [e(0, 0, true)]));
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
        let c1 = arena.compose_ids(a, a);
        let hits = arena.stats.memo_hits;
        let c2 = arena.compose_ids(a, a);
        assert_eq!(c1, c2);
        assert_eq!(arena.stats.memo_hits, hits + 1);
    }

    #[test]
    fn strict_self_loop_passes_criterion() {
        let mut arena = GraphArena::new();
        let a = arena.intern(Graph::new(0, 0, [e(0, 0, true)]));
        let closed = closure(&mut arena, &[a]);
        let mut idem = 0;
        assert_eq!(criterion(&mut arena, &closed, &mut idem), None);
        assert!(idem >= 1);
    }

    #[test]
    fn nonstrict_self_loop_fails_criterion() {
        let mut arena = GraphArena::new();
        let a = arena.intern(Graph::new(0, 0, [e(0, 0, false)]));
        let closed = closure(&mut arena, &[a]);
        let mut idem = 0;
        assert!(criterion(&mut arena, &closed, &mut idem).is_some());
    }

    #[test]
    fn crossed_descent_fails_criterion() {
        // g = {0→1 strict} composes with itself to the empty graph
        // (nothing leaves position 1), which is idempotent with no strict
        // self-edge — the criterion must reject it.
        let mut arena = GraphArena::new();
        let a = arena.intern(Graph::new(0, 0, [e(0, 1, true)]));
        let closed = closure(&mut arena, &[a]);
        let mut idem = 0;
        assert!(criterion(&mut arena, &closed, &mut idem).is_some());
    }

    #[test]
    fn powers_criterion_agrees_on_small_cases() {
        for (edges, expect) in [
            (vec![e(0, 0, true)], true),
            (vec![e(0, 0, false)], false),
            (vec![e(0, 1, true), e(1, 0, true)], true),
            (vec![e(0, 1, true)], false),
        ] {
            let mut arena = GraphArena::new();
            let a = arena.intern(Graph::new(0, 0, edges));
            let closed = closure(&mut arena, &[a]);
            let mut idem = 0;
            let by_closure = criterion(&mut arena, &closed, &mut idem).is_none();
            let by_powers = criterion_by_powers(&mut arena, &closed);
            assert_eq!(by_closure, by_powers);
            assert_eq!(by_closure, expect);
        }
    }
}
