//! E7c — simplex vs Fourier–Motzkin as the feasibility decision procedure.
//!
//! The paper's final θ systems can be decided either way ("the final
//! constraints represent a feasibility problem in linear programming";
//! "in practice Fourier-Motzkin elimination is simple and adequate").
//! This bench locates the crossover on random systems of growing size.

use argus_bench::workload::{random_feasible_system, random_system, rng};
use argus_linear::{fm, simplex, ConstraintSystem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

/// FM satisfiability with a generous row cap: on dense random systems FM's
/// intermediate row count grows doubly exponentially, so past ~6 variables
/// a cap is needed to keep the bench finite at all — which is itself the
/// measured result (simplex keeps scaling where FM falls off a cliff).
fn fm_satisfiable_capped(sys: &ConstraintSystem) -> Option<bool> {
    match fm::project_onto_capped(sys, &BTreeSet::new(), 50_000)? {
        fm::FmResult::Projected(rest) => Some(rest.simplify_trivial().is_some()),
        fm::FmResult::Infeasible => Some(false),
    }
}

fn bench_feasibility(c: &mut Criterion) {
    for (label, feasible) in [("feasible", true), ("mixed", false)] {
        let mut group = c.benchmark_group(format!("feasibility/{label}"));
        group.sample_size(10);
        for nvars in [3usize, 4, 5, 6] {
            let mut r = rng(13 + nvars as u64);
            let sys = if feasible {
                random_feasible_system(&mut r, nvars, nvars * 2, 3)
            } else {
                random_system(&mut r, nvars, nvars * 2, 3)
            };
            group.bench_with_input(BenchmarkId::new("simplex", nvars), &nvars, |b, _| {
                b.iter(|| black_box(simplex::feasible_point(black_box(&sys), &BTreeSet::new())))
            });
            group.bench_with_input(BenchmarkId::new("fm", nvars), &nvars, |b, _| {
                b.iter(|| black_box(fm_satisfiable_capped(black_box(&sys))))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
