//! The parallel analysis pipeline must be invisible in the output: for any
//! worker count, the report — human-readable text AND machine JSON — must
//! be byte-identical to the fully sequential run. SCC results are computed
//! level-concurrently but emitted in the sequential bottom-up order, and
//! per-pair projections truncate at the first failure exactly like the
//! sequential early-break, so nothing downstream can tell the difference.

use argus::prelude::*;

fn render(report: &TerminationReport) -> (String, String) {
    (report.to_string(), report.to_json())
}

fn analyze_with_jobs(
    entry: &argus::corpus::CorpusEntry,
    options: &AnalysisOptions,
) -> (String, String) {
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    render(&analyze(&program, &query, adornment, options))
}

/// Every corpus entry, default options: `--jobs 4` == `--jobs 1`, byte for
/// byte, on both the Display text and the JSON report.
#[test]
fn corpus_reports_identical_across_worker_counts() {
    for entry in argus::corpus::corpus() {
        let seq =
            analyze_with_jobs(&entry, &AnalysisOptions { parallelism: 1, ..Default::default() });
        for jobs in [2, 4] {
            let par = analyze_with_jobs(
                &entry,
                &AnalysisOptions { parallelism: jobs, ..Default::default() },
            );
            assert_eq!(seq.0, par.0, "{}: text differs at --jobs {jobs}", entry.name);
            assert_eq!(seq.1, par.1, "{}: JSON differs at --jobs {jobs}", entry.name);
        }
    }
}

/// The non-default analysis paths (Appendix C δ variables, lexicographic
/// fallback, list-length norm) go through the same fan-out points and must
/// be deterministic too.
#[test]
fn variant_options_identical_across_worker_counts() {
    let variants = [
        AnalysisOptions { delta_mode: DeltaMode::PathConstraints, ..Default::default() },
        AnalysisOptions { lexicographic: true, ..Default::default() },
        AnalysisOptions { norm: argus::logic::Norm::ListLength, ..Default::default() },
    ];
    for entry in argus::corpus::corpus() {
        for variant in &variants {
            let seq =
                analyze_with_jobs(&entry, &AnalysisOptions { parallelism: 1, ..variant.clone() });
            let par =
                analyze_with_jobs(&entry, &AnalysisOptions { parallelism: 4, ..variant.clone() });
            assert_eq!(seq, par, "{}: variant {variant:?} differs at --jobs 4", entry.name);
        }
    }
}

/// The FM redundancy tiers and the projection cache are performance knobs,
/// not semantic ones: every corpus entry must render the identical report
/// at every tier, with the cache on or off, at any worker count.
///
/// `mutual_fib_ring` exists precisely because tiers 0–1 cannot finish its
/// pair projections in useful time (minutes-plus where tier 2 takes
/// milliseconds), so for that entry only the feasible tiers are swept; the
/// fuzz-reproducer replay covers tiers 0–1 identity on small programs.
#[test]
fn corpus_reports_identical_across_fm_tiers_and_cache() {
    for entry in argus::corpus::corpus() {
        let base = analyze_with_jobs(&entry, &AnalysisOptions::default());
        for tier in FmTier::ALL {
            if entry.name == "mutual_fib_ring" && tier.index() < FmTier::default().index() {
                continue;
            }
            for fm_cache in [true, false] {
                for jobs in [1, 4] {
                    let options = AnalysisOptions {
                        fm_tier: tier,
                        fm_cache,
                        parallelism: jobs,
                        ..Default::default()
                    };
                    let got = analyze_with_jobs(&entry, &options);
                    assert_eq!(
                        base, got,
                        "{}: report differs at fm tier {tier:?}, cache {fm_cache}, --jobs {jobs}",
                        entry.name
                    );
                }
            }
        }
    }
}

/// The `--stats` counters are deterministic by design (cache hits replay the
/// stored counters), so even the stats-bearing JSON must be byte-identical
/// across worker counts.
#[test]
fn stats_json_identical_across_worker_counts() {
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let seq = analyze(
            &program,
            &query,
            adornment.clone(),
            &AnalysisOptions { parallelism: 1, ..Default::default() },
        )
        .to_json_with(true);
        let par = analyze(
            &program,
            &query,
            adornment,
            &AnalysisOptions { parallelism: 4, ..Default::default() },
        )
        .to_json_with(true);
        assert_eq!(seq, par, "{}: stats JSON differs at --jobs 4", entry.name);
    }
}

/// Certificates produced under parallel analysis verify exactly like the
/// sequential ones (the witness/refutation objects are identical).
#[test]
fn certificates_survive_parallel_analysis() {
    for entry in argus::corpus::corpus() {
        let options = AnalysisOptions { parallelism: 4, ..Default::default() };
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &options);
        if report.verdict == Verdict::Terminates {
            argus::core::verify_report(&report, options.norm).unwrap_or_else(|e| {
                panic!("{}: certificate rejected under --jobs 4: {e}", entry.name)
            });
        }
        for scc in &report.sccs {
            if let Some(ok) = scc.verify_refutation() {
                assert!(ok, "{}: Farkas refutation failed to verify under --jobs 4", entry.name);
            }
        }
    }
}

/// The process-lifetime shared projection cache (the `argus serve`
/// configuration) must be invisible too: hammer one cache from many
/// threads analyzing overlapping programs concurrently, and every report
/// must stay byte-identical to the isolated sequential run.
///
/// With an unbounded cache this also checks publish-race accounting: each
/// distinct key is computed-and-inserted exactly once no matter how many
/// threads race on it, so `computed == entries` — a lost update (insert
/// overwritten or dropped) would break the equality.
#[test]
fn shared_projection_cache_hammer() {
    use argus::core::{analyze_with_cache, ProjectionCache};
    let entries: Vec<_> = argus::corpus::corpus()
        .into_iter()
        .filter(|e| e.name != "mutual_fib_ring") // heavy; the others cover the races
        .collect();
    let baselines: Vec<(String, String)> = entries
        .iter()
        .map(|e| {
            (
                e.name.to_string(),
                analyze_with_jobs(e, &AnalysisOptions { parallelism: 1, ..Default::default() }).1,
            )
        })
        .collect();

    let shared = ProjectionCache::new(); // unbounded: serve's budget knob off
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let entries = &entries;
            let baselines = &baselines;
            let shared = &shared;
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..entries.len() {
                        let idx = (i + worker + round) % entries.len();
                        let entry = &entries[idx];
                        let program = entry.program().unwrap();
                        let (query, adornment) = entry.query_key();
                        let report = analyze_with_cache(
                            &program,
                            &query,
                            adornment,
                            &AnalysisOptions { parallelism: 1, ..Default::default() },
                            Some(shared),
                        );
                        assert_eq!(
                            report.to_json(),
                            baselines[idx].1,
                            "{}: shared-cache report diverges (worker {worker}, round {round})",
                            baselines[idx].0
                        );
                    }
                }
            });
        }
    });
    assert_eq!(
        shared.computed(),
        shared.entries(),
        "unbounded shared cache lost an update: computed != resident entries"
    );
    assert!(shared.lookup_hits() > 0, "hammer never hit the shared cache");

    // Same hammer against a tiny budget, so eviction races constantly
    // against lookup and publish: reports must still be byte-identical.
    let tiny = ProjectionCache::with_byte_budget(64 * 1024);
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let entries = &entries;
            let baselines = &baselines;
            let tiny = &tiny;
            scope.spawn(move || {
                for i in 0..entries.len() {
                    let idx = (i + worker) % entries.len();
                    let entry = &entries[idx];
                    let program = entry.program().unwrap();
                    let (query, adornment) = entry.query_key();
                    let report = analyze_with_cache(
                        &program,
                        &query,
                        adornment,
                        &AnalysisOptions { parallelism: 1, ..Default::default() },
                        Some(tiny),
                    );
                    assert_eq!(
                        report.to_json(),
                        baselines[idx].1,
                        "{}: eviction-pressure report diverges (worker {worker})",
                        baselines[idx].0
                    );
                }
            });
        }
    });
}

/// Backwards condition inference schedules whole-SCC analysis jobs across
/// workers; like the forward pipeline, the worker count must be invisible
/// in the inference JSON, byte for byte.
///
/// `mutual_fib_ring` is excluded for runtime (its full adornment lattice
/// is minutes of work in debug builds); `tests/infer.rs` covers it
/// sequentially and the cheap entries exercise the same fan-out points.
#[test]
fn inference_json_identical_across_worker_counts() {
    for entry in argus::corpus::corpus() {
        if entry.name == "mutual_fib_ring" {
            continue;
        }
        let program = entry.program().unwrap();
        let seq = infer_conditions(
            &program,
            &BackwardsOptions {
                analysis: AnalysisOptions { parallelism: 1, ..Default::default() },
                ..Default::default()
            },
        )
        .to_json();
        for jobs in [2, 4] {
            let par = infer_conditions(
                &program,
                &BackwardsOptions {
                    analysis: AnalysisOptions { parallelism: jobs, ..Default::default() },
                    ..Default::default()
                },
            )
            .to_json();
            assert_eq!(seq, par, "{}: inference JSON differs at --jobs {jobs}", entry.name);
        }
    }
}

/// The racing portfolio's first-proof-wins cancellation is a pure
/// efficiency knob: the rendered report — Display text, JSON, and the
/// per-engine stats — must be byte-identical at every `--jobs` setting,
/// including the fully sequential run, on every corpus entry.
#[test]
fn portfolio_reports_identical_across_worker_counts() {
    use argus::baselines::standard_engines;
    use argus::core::run_portfolio;
    let engines = standard_engines();
    let options = AnalysisOptions::default();
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let render = |jobs: usize| {
            let r = run_portfolio(&engines, &program, &query, &adornment, &options, jobs, true);
            (r.to_string(), r.to_json(true), r.render_stats())
        };
        let seq = render(1);
        for jobs in [0, 2, 8] {
            let par = render(jobs);
            assert_eq!(seq, par, "{}: portfolio output differs at --jobs {jobs}", entry.name);
        }
    }
}

/// The serve condition table must be consistent under concurrency: eight
/// threads hammering `/v1/infer` and `/v1/analyze` on one shared
/// `ServerState` must every time receive bodies byte-identical to an
/// isolated single-request server, whether served fresh or from cache.
#[test]
fn serve_condition_table_consistent_under_hammer() {
    use argus::serve::{jsonval::json_str, Request, ServeOptions, ServerState};

    fn post(path: &str, body: String) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.into_bytes(),
            keep_alive: true,
        }
    }
    fn infer_body(src: &str) -> String {
        format!("{{\"program\":{}}}", json_str(src))
    }
    fn analyze_body(entry: &argus::corpus::CorpusEntry) -> String {
        format!(
            "{{\"program\":{},\"query\":{},\"adornment\":{}}}",
            json_str(entry.source),
            json_str(entry.query),
            json_str(entry.adornment),
        )
    }

    let entries: Vec<_> = argus::corpus::corpus()
        .into_iter()
        .filter(|e| e.name != "mutual_fib_ring") // heavy; same routes either way
        .collect();

    // Generous deadline: debug builds under 8-way contention must never
    // trip the 504 path, which would turn a slow machine into a failure.
    let options = || ServeOptions { deadline_ms: 300_000, ..ServeOptions::default() };

    // Baselines from a fresh state per request pair: no cross-request
    // cache effects can leak into the expected bytes.
    let baselines: Vec<(Vec<u8>, Vec<u8>)> = entries
        .iter()
        .map(|entry| {
            let isolated = ServerState::new(options());
            let inf = isolated.handle(&post("/v1/infer", infer_body(entry.source)));
            assert_eq!(inf.status, 200, "{}: isolated infer failed", entry.name);
            let ana = isolated.handle(&post("/v1/analyze", analyze_body(entry)));
            assert_eq!(ana.status, 200, "{}: isolated analyze failed", entry.name);
            (inf.body, ana.body)
        })
        .collect();

    let shared = ServerState::new(options());
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let entries = &entries;
            let baselines = &baselines;
            let shared = &shared;
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..entries.len() {
                        let idx = (i + worker + round) % entries.len();
                        let entry = &entries[idx];
                        // Half the workers lead with infer (priming the
                        // analyze cache), half with analyze: both orders
                        // must converge on the same bytes.
                        let reqs = if worker % 2 == 0 {
                            [("/v1/infer", 0), ("/v1/analyze", 1)]
                        } else {
                            [("/v1/analyze", 1), ("/v1/infer", 0)]
                        };
                        for (path, which) in reqs {
                            let body = if which == 0 {
                                infer_body(entry.source)
                            } else {
                                analyze_body(entry)
                            };
                            let resp = shared.handle(&post(path, body));
                            assert_eq!(
                                resp.status, 200,
                                "{}: {path} failed under hammer (worker {worker}, round {round})",
                                entry.name
                            );
                            let expected =
                                if which == 0 { &baselines[idx].0 } else { &baselines[idx].1 };
                            assert_eq!(
                                &resp.body, expected,
                                "{}: {path} bytes diverge under hammer (worker {worker}, round {round})",
                                entry.name
                            );
                        }
                    }
                }
            });
        }
    });
    assert!(shared.conditions().hits() > 0, "hammer never hit the shared condition cache");
}

/// The incremental per-SCC memo must be invisible in the output through
/// an edit session: prime a memo on a program, then replay every
/// single-clause deletion (plus the no-op edit) and check that the
/// memoized report is byte-identical to a from-scratch run of the edited
/// program — text and JSON, at `--jobs 0` and `--jobs 8`. This is the
/// incremental layer's core soundness property: a stale or over-shared
/// cache entry would surface here as a divergence.
#[test]
fn incremental_reports_identical_under_clause_edits() {
    use argus::core::{analyze_with_caches, SccCache};
    for entry in argus::corpus::corpus() {
        if entry.name == "mutual_fib_ring" {
            continue; // FM-heavy; the cheap entries cover the same memo paths
        }
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let memo = SccCache::unbounded();
        let options = |jobs: usize| AnalysisOptions { parallelism: jobs, ..Default::default() };

        // Prime on the original program; the primed run itself must match.
        let cold0 = render(&analyze(&program, &query, adornment.clone(), &options(1)));
        let warm0 = render(&analyze_with_caches(
            &program,
            &query,
            adornment.clone(),
            &options(1),
            None,
            Some(&memo),
        ));
        assert_eq!(cold0, warm0, "{}: primed report differs from cold", entry.name);

        // The no-op edit, then every single-clause deletion, against the
        // memo that still holds the pre-edit entries.
        let mut edits: Vec<Program> = vec![program.clone()];
        for i in 0..program.rules.len() {
            let mut edited = program.clone();
            edited.rules.remove(i);
            edits.push(edited);
        }
        for (edit, edited) in edits.iter().enumerate() {
            for jobs in [0usize, 8] {
                let cold = render(&analyze(edited, &query, adornment.clone(), &options(jobs)));
                let warm = render(&analyze_with_caches(
                    edited,
                    &query,
                    adornment.clone(),
                    &options(jobs),
                    None,
                    Some(&memo),
                ));
                assert_eq!(
                    cold, warm,
                    "{}: edit {edit} memoized report differs at --jobs {jobs}",
                    entry.name
                );
            }
        }
    }
}

/// Backwards inference under a shared per-SCC memo — including a memo
/// already primed by forward analysis — must render byte-identical
/// inference JSON to the memo-free run, at several worker counts.
#[test]
fn inference_json_identical_with_scc_memo() {
    use argus::core::{analyze_with_caches, SccCache};
    use std::sync::Arc;
    for entry in argus::corpus::corpus() {
        if entry.name == "mutual_fib_ring" {
            continue; // runtime; see inference_json_identical_across_worker_counts
        }
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let cold = infer_conditions(&program, &BackwardsOptions::default()).to_json();
        let memo = Arc::new(SccCache::unbounded());
        // Prime from the forward side first: inference probes must then
        // hit entries written by plain `analyze`, bytes unchanged.
        analyze_with_caches(
            &program,
            &query,
            adornment,
            &AnalysisOptions::default(),
            None,
            Some(&memo),
        );
        for jobs in [1usize, 4] {
            let warm = infer_conditions(
                &program,
                &BackwardsOptions {
                    analysis: AnalysisOptions { parallelism: jobs, ..Default::default() },
                    scc_memo: Some(Arc::clone(&memo)),
                    ..Default::default()
                },
            )
            .to_json();
            assert_eq!(
                cold, warm,
                "{}: inference JSON differs under scc memo at --jobs {jobs}",
                entry.name
            );
        }
    }
}

/// The example program shipped in `examples/` analyzes identically at any
/// worker count, under both text and JSON rendering.
#[test]
fn example_file_identical_across_worker_counts() {
    let src =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/lint_demo.pl"))
            .expect("examples/lint_demo.pl");
    let program = argus::logic::parser::parse_program(&src).unwrap();
    // Analyze every IDB predicate with an all-bound adornment: exercises
    // multi-SCC level scheduling on a real file.
    for pred in program.idb_predicates() {
        let adornment = Adornment::parse(&"b".repeat(pred.arity)).unwrap();
        let seq = render(&analyze(
            &program,
            &pred,
            adornment.clone(),
            &AnalysisOptions { parallelism: 1, ..Default::default() },
        ));
        let par = render(&analyze(
            &program,
            &pred,
            adornment,
            &AnalysisOptions { parallelism: 4, ..Default::default() },
        ));
        assert_eq!(seq, par, "{pred}: report differs at --jobs 4");
    }
}
