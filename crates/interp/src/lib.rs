//! # argus-interp — executing logic programs
//!
//! Two evaluators used to *validate* the termination analyzer empirically:
//!
//! * [`sld`] — top-down SLD resolution with the Prolog computation rule
//!   (left-to-right, depth-first, textual clause order), metered by step
//!   and depth budgets. A query against a program the analyzer proved
//!   terminating must explore its whole search tree within budget.
//! * [`machine`] — a trail-based iterative engine producing identical
//!   results to [`sld`] with O(1) backtracking and no host-stack
//!   recursion (the production engine; [`sld`] is its oracle).
//! * [`bottomup`] — semi-naive forward chaining with a fact budget,
//!   supplying the other half of the paper's capture-rule motivation
//!   (§1): recursion on structure typically converges top-down and
//!   diverges bottom-up.
//!
//! ```
//! use argus_interp::sld::{solve, InterpOptions};
//! use argus_logic::parser::{parse_program, parse_query};
//!
//! let program = parse_program(
//!     "append([], Ys, Ys).\n\
//!      append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
//! ).unwrap();
//! let goals = parse_query("append(X, Y, [a, b])").unwrap();
//! let outcome = solve(&program, &goals, &InterpOptions::default());
//! assert!(outcome.terminated());
//! assert_eq!(outcome.solution_count(), 3);
//! ```

#![warn(missing_docs)]

pub mod bottomup;
pub mod machine;
pub mod sld;

pub use bottomup::{saturate, BottomUpOptions, Saturation};
pub use machine::solve_iterative;
pub use sld::{solve, InterpOptions, Outcome};
