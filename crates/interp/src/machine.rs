//! An iterative, trail-based SLD machine.
//!
//! The reference interpreter in [`crate::sld`] clones the substitution at
//! every unification step and recurses on the goal list — simple, obviously
//! correct, and the oracle for this module. The machine here is the
//! engine a real system would use:
//!
//! * **shared bindings + trail**: unification binds variables in one
//!   mutable store and records each binding on a trail; backtracking pops
//!   the trail instead of copying substitutions (O(undo) instead of
//!   O(store));
//! * **persistent goal lists**: continuations are `Arc`-linked cons cells,
//!   so a choice point captures its continuation in O(1);
//! * **explicit choice-point stack**: no host-stack recursion, so
//!   derivation depth is bounded by memory and the step budget, not the
//!   call stack.
//!
//! Results are bit-for-bit identical to [`crate::sld::solve`] (same
//! solution order — textual clause order, depth-first), which the tests
//! and the equivalence property test assert.

use crate::sld::{InterpOptions, Outcome};
use argus_logic::program::{Literal, ProcIndex, Program};
use argus_logic::term::Term;
use argus_logic::unify::Subst;
use argus_logic::Sym;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A persistent goal list.
enum Goals {
    Nil,
    Cons(Literal, Arc<Goals>),
}

impl Goals {
    fn cons(lit: Literal, rest: Arc<Goals>) -> Arc<Goals> {
        Arc::new(Goals::Cons(lit, rest))
    }

    fn from_slice(goals: &[Literal], tail: Arc<Goals>) -> Arc<Goals> {
        goals.iter().rev().fold(tail, |acc, g| Goals::cons(g.clone(), acc))
    }
}

/// Mutable binding store with a trail for O(1) backtracking.
struct Store {
    /// Shared substitution; variables are bound at most once between undo
    /// points (bind only ever targets unbound root variables).
    subst: Subst,
    trail: Vec<Sym>,
}

impl Store {
    fn new() -> Store {
        Store { subst: Subst::new(), trail: Vec::new() }
    }

    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail");
            self.subst.unbind(v);
        }
    }

    /// Unify under the store, trailing new bindings. On failure the caller
    /// must undo to its mark (partial bindings may have been trailed).
    fn unify(&mut self, a: &Term, b: &Term, occurs_check: bool) -> bool {
        let ra = self.subst.walk(a).clone();
        let rb = self.subst.walk(b).clone();
        match (&ra, &rb) {
            (Term::Var(v), Term::Var(w)) if v == w => true,
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                if occurs_check && self.occurs(*v, t) {
                    return false;
                }
                self.subst.bind(*v, t.clone());
                self.trail.push(*v);
                true
            }
            (Term::App(f, fa), Term::App(g, ga)) => {
                if f != g || fa.len() != ga.len() {
                    return false;
                }
                fa.iter().zip(ga.iter()).all(|(x, y)| self.unify(x, y, occurs_check))
            }
        }
    }

    fn occurs(&self, v: Sym, t: &Term) -> bool {
        match self.subst.walk(t) {
            Term::Var(w) => *w == v,
            Term::App(_, args) => {
                let args = args.clone();
                args.iter().any(|a| self.occurs(v, a))
            }
        }
    }
}

/// A choice point: retry `goal` with clause `next_clause` and continuation
/// `rest` after undoing the trail to `mark`.
struct Choice {
    goal: Literal,
    rest: Arc<Goals>,
    next_clause: usize,
    mark: usize,
}

struct Machine<'p> {
    program: &'p Program,
    index: ProcIndex,
    options: InterpOptions,
    store: Store,
    choices: Vec<Choice>,
    steps: u64,
    rename_counter: u64,
}

enum Step {
    Continue(Arc<Goals>),
    Fail,
    Budget,
}

/// Run `goals` with the trail-based machine. Produces the same [`Outcome`]
/// as [`crate::sld::solve`], in the same order.
pub fn solve_iterative(program: &Program, goals: &[Literal], options: &InterpOptions) -> Outcome {
    let mut query_vars: Vec<Sym> = Vec::new();
    {
        let mut seen = std::collections::BTreeSet::new();
        for g in goals {
            for v in g.atom.vars() {
                if seen.insert(v) {
                    query_vars.push(v);
                }
            }
        }
    }
    let mut m = Machine {
        program,
        index: ProcIndex::build(program),
        options: options.clone(),
        store: Store::new(),
        choices: Vec::new(),
        steps: 0,
        rename_counter: 0,
    };
    let mut solutions: Vec<BTreeMap<String, Term>> = Vec::new();

    let mut current = Goals::from_slice(goals, Arc::new(Goals::Nil));
    let budget_hit = 'run: loop {
        match &*current {
            Goals::Nil => {
                // A solution: read off the query variables.
                solutions.push(
                    query_vars
                        .iter()
                        .map(|v| (v.to_string(), m.store.subst.resolve(&Term::Var(*v))))
                        .collect(),
                );
                if solutions.len() >= m.options.max_solutions {
                    break 'run false;
                }
                match m.backtrack() {
                    Some(next) => current = next,
                    None => break 'run false,
                }
            }
            Goals::Cons(first, rest) => {
                let first = first.clone();
                let rest = rest.clone();
                match m.step(&first, &rest) {
                    Step::Continue(next) => current = next,
                    Step::Fail => match m.backtrack() {
                        Some(next) => current = next,
                        None => break 'run false,
                    },
                    Step::Budget => break 'run true,
                }
            }
        }
        if m.choices.len() > m.options.max_depth * 64 {
            // Memory guard analogous to the reference engine's depth cap.
            break 'run true;
        }
    };

    if budget_hit {
        Outcome::OutOfBudget { steps: m.steps, solutions_so_far: solutions.len() }
    } else {
        Outcome::Completed { solutions, steps: m.steps }
    }
}

impl<'p> Machine<'p> {
    fn tick(&mut self) -> bool {
        self.steps += 1;
        self.steps <= self.options.max_steps
    }

    /// Resolve one goal. Returns the next goal list, Fail, or Budget.
    fn step(&mut self, goal: &Literal, rest: &Arc<Goals>) -> Step {
        if !goal.positive {
            // Negation as failure via a nested bounded machine on the
            // current instantiation of the atom.
            if !self.tick() {
                return Step::Budget;
            }
            let resolved = self.store.subst.resolve_atom(&goal.atom);
            let sub_options = InterpOptions {
                max_solutions: 1,
                max_steps: self.options.max_steps.saturating_sub(self.steps),
                ..self.options.clone()
            };
            let sub = solve_iterative(self.program, &[Literal::pos(resolved)], &sub_options);
            self.steps += sub.steps();
            match sub {
                Outcome::OutOfBudget { .. } => return Step::Budget,
                Outcome::Completed { solutions, .. } => {
                    if solutions.is_empty() {
                        return Step::Continue(rest.clone());
                    }
                    return Step::Fail;
                }
            }
        }

        let key = goal.atom.key();
        if key.arity == 2 {
            match &*key.name {
                "=" => {
                    if !self.tick() {
                        return Step::Budget;
                    }
                    let mark = self.store.mark();
                    if self.store.unify(
                        &goal.atom.args[0],
                        &goal.atom.args[1],
                        self.options.occurs_check,
                    ) {
                        return Step::Continue(rest.clone());
                    }
                    self.store.undo_to(mark);
                    return Step::Fail;
                }
                "\\=" => {
                    if !self.tick() {
                        return Step::Budget;
                    }
                    let mark = self.store.mark();
                    let unifies = self.store.unify(
                        &goal.atom.args[0],
                        &goal.atom.args[1],
                        self.options.occurs_check,
                    );
                    self.store.undo_to(mark);
                    return if unifies { Step::Fail } else { Step::Continue(rest.clone()) };
                }
                "==" | "\\==" => {
                    if !self.tick() {
                        return Step::Budget;
                    }
                    let a = self.store.subst.resolve(&goal.atom.args[0]);
                    let b = self.store.subst.resolve(&goal.atom.args[1]);
                    let want = &*key.name == "==";
                    return if (a == b) == want {
                        Step::Continue(rest.clone())
                    } else {
                        Step::Fail
                    };
                }
                "<" | ">" | "=<" | ">=" => {
                    if !self.tick() {
                        return Step::Budget;
                    }
                    let (Some(a), Some(b)) =
                        (self.eval_arith(&goal.atom.args[0]), self.eval_arith(&goal.atom.args[1]))
                    else {
                        return Step::Fail;
                    };
                    let ok = match &*key.name {
                        "<" => a < b,
                        ">" => a > b,
                        "=<" => a <= b,
                        _ => a >= b,
                    };
                    return if ok { Step::Continue(rest.clone()) } else { Step::Fail };
                }
                "is" => {
                    if !self.tick() {
                        return Step::Budget;
                    }
                    let Some(v) = self.eval_arith(&goal.atom.args[1]) else {
                        return Step::Fail;
                    };
                    let mark = self.store.mark();
                    if self.store.unify(
                        &goal.atom.args[0],
                        &Term::int(v),
                        self.options.occurs_check,
                    ) {
                        return Step::Continue(rest.clone());
                    }
                    self.store.undo_to(mark);
                    return Step::Fail;
                }
                _ => {}
            }
        }

        // User predicate: open a choice point at clause 0.
        self.try_clauses(goal, rest, 0)
    }

    /// Try clauses for `goal` starting at `from`, installing a choice point
    /// for the remaining alternatives.
    fn try_clauses(&mut self, goal: &Literal, rest: &Arc<Goals>, from: usize) -> Step {
        let key = goal.atom.key();
        let clauses: Vec<_> = self.index.procedure(self.program, &key);
        for idx in from..clauses.len() {
            if !self.tick() {
                return Step::Budget;
            }
            let mark = self.store.mark();
            self.rename_counter += 1;
            let renamed = clauses[idx].rename_suffix(&format!("_m{}", self.rename_counter));
            let head_ok = goal
                .atom
                .args
                .iter()
                .zip(renamed.head.args.iter())
                .all(|(a, b)| self.store.unify(a, b, self.options.occurs_check));
            if !head_ok {
                self.store.undo_to(mark);
                continue;
            }
            if idx + 1 < clauses.len() {
                self.choices.push(Choice {
                    goal: goal.clone(),
                    rest: rest.clone(),
                    next_clause: idx + 1,
                    mark,
                });
            }
            return Step::Continue(Goals::from_slice(&renamed.body, rest.clone()));
        }
        Step::Fail
    }

    /// Pop to the most recent choice point and resume there.
    fn backtrack(&mut self) -> Option<Arc<Goals>> {
        loop {
            let choice = self.choices.pop()?;
            self.store.undo_to(choice.mark);
            match self.try_clauses(&choice.goal, &choice.rest, choice.next_clause) {
                Step::Continue(next) => return Some(next),
                Step::Fail => continue,
                Step::Budget => return None, // budget surfaced by main loop on next tick
            }
        }
    }

    fn eval_arith(&self, t: &Term) -> Option<i64> {
        fn eval(s: &Subst, t: &Term) -> Option<i64> {
            match s.walk(t) {
                Term::Var(_) => None,
                Term::App(f, args) if args.is_empty() => f.parse::<i64>().ok(),
                Term::App(f, args) if args.len() == 2 => {
                    let a = eval(s, &args[0])?;
                    let b = eval(s, &args[1])?;
                    match &**f {
                        "+" => a.checked_add(b),
                        "-" => a.checked_sub(b),
                        "*" => a.checked_mul(b),
                        "//" => {
                            if b == 0 {
                                None
                            } else {
                                a.checked_div(b)
                            }
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        }
        eval(&self.store.subst, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sld::solve;
    use argus_logic::parser::{parse_program, parse_query};

    fn both(src: &str, query: &str) -> (Outcome, Outcome) {
        let p = parse_program(src).unwrap();
        let goals = parse_query(query).unwrap();
        let opts = InterpOptions::default();
        (solve(&p, &goals, &opts), solve_iterative(&p, &goals, &opts))
    }

    /// The two engines must produce the same solutions in the same order.
    fn assert_equivalent(src: &str, query: &str) {
        let (reference, machine) = both(src, query);
        match (&reference, &machine) {
            (Outcome::Completed { solutions: a, .. }, Outcome::Completed { solutions: b, .. }) => {
                // Solutions are compared modulo variable renaming of
                // internal fresh names: resolve to display strings with
                // fresh suffixes normalized away by comparing shapes.
                let norm = |sols: &[BTreeMap<String, Term>]| -> Vec<String> {
                    sols.iter()
                        .map(|m| {
                            m.iter()
                                .map(|(k, v)| {
                                    let mut s = format!("{k}={v}");
                                    // normalize fresh-var suffixes
                                    for marker in ["_r", "_m"] {
                                        while let Some(pos) = s.find(marker) {
                                            let end = s[pos + marker.len()..]
                                                .find(|c: char| !c.is_ascii_digit())
                                                .map(|e| pos + marker.len() + e)
                                                .unwrap_or(s.len());
                                            s.replace_range(pos..end, "_fresh");
                                        }
                                    }
                                    s
                                })
                                .collect::<Vec<_>>()
                                .join(",")
                        })
                        .collect()
                };
                assert_eq!(norm(a), norm(b), "{src} ?- {query}");
            }
            (Outcome::OutOfBudget { .. }, Outcome::OutOfBudget { .. }) => {}
            other => panic!("engines disagree on {query}: {other:?}"),
        }
    }

    #[test]
    fn equivalent_on_classics() {
        let append = "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";
        assert_equivalent(append, "append([a, b], [c], Z)");
        assert_equivalent(append, "append(X, Y, [a, b, c])");
        assert_equivalent(append, "append(X, Y, [])");

        let perm = "perm([], []).\n\
                    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
                    append([], Ys, Ys).\n\
                    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";
        assert_equivalent(perm, "perm([a, b, c], Q)");

        let merge = "merge([], Ys, Ys).\n\
                     merge(Xs, [], Xs).\n\
                     merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
                     merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).";
        assert_equivalent(merge, "merge([1, 3], [2, 4], Z)");
    }

    #[test]
    fn equivalent_on_builtins() {
        assert_equivalent("", "X = f(Y), Y = a");
        assert_equivalent("", "3 < 5, 1 =< 1");
        assert_equivalent("", "a \\= b");
        assert_equivalent(
            "len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.",
            "len([a, b, c], N)",
        );
    }

    #[test]
    fn equivalent_on_negation() {
        let src = "p(a).\nq(X) :- \\+ p(X).";
        assert_equivalent(src, "q(a)");
        assert_equivalent(src, "q(b)");
    }

    #[test]
    fn budget_stops_loops() {
        let p = parse_program("p(X) :- p(X).").unwrap();
        let goals = parse_query("p(a)").unwrap();
        let out = solve_iterative(
            &p,
            &goals,
            &InterpOptions { max_steps: 1000, ..InterpOptions::default() },
        );
        assert!(!out.terminated());
    }

    #[test]
    fn deep_derivations_no_stack_overflow() {
        // 4000-deep derivation: an order of magnitude beyond the reference
        // engine's goal-depth cap (400). The machine's control is
        // iterative; the remaining depth limit is term *representation*
        // (resolve/drop recurse over the term tree), not the search. Those
        // term-tree recursions need more than a debug-build test thread's
        // default stack, so run on a thread with an explicit one.
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| {
                let p = parse_program("count(z).\ncount(s(N)) :- count(N).").unwrap();
                // Build s^4000(z) iteratively (the recursive-descent parser
                // would itself overflow on a literal this deep).
                let nat = (0..4_000).fold(Term::atom("z"), |acc, _| Term::app("s", vec![acc]));
                let goals = vec![Literal::pos(argus_logic::Atom::new("count", vec![nat]))];
                let out = solve_iterative(
                    &p,
                    &goals,
                    &InterpOptions {
                        max_steps: 1_000_000,
                        max_depth: 10_000_000,
                        ..InterpOptions::default()
                    },
                );
                assert!(out.terminated(), "steps: {}", out.steps());
                assert_eq!(out.solution_count(), 1);
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn backtracking_order_matches_textual_order() {
        let p = parse_program("c(r).\nc(g).\nc(b).").unwrap();
        let goals = parse_query("c(X)").unwrap();
        let out = solve_iterative(&p, &goals, &InterpOptions::default());
        match out {
            Outcome::Completed { solutions, .. } => {
                let got: Vec<String> = solutions.iter().map(|s| s["X"].to_string()).collect();
                assert_eq!(got, ["r", "g", "b"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
