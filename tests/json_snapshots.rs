//! Golden snapshots of the machine-readable JSON surfaces.
//!
//! Downstream consumers parse `argus analyze --json` and `argus fuzz
//! --json`; these tests pin the exact bytes both emit on fixed inputs, so
//! any schema change (renamed key, reordered field, new escaping) shows up
//! as a reviewed diff to `tests/golden/` instead of a silent break.
//!
//! To bless an intentional change: `UPDATE_GOLDEN=1 cargo test -q
//! --test json_snapshots`, then commit the updated files.

use argus::fuzz::{run as run_fuzz, FuzzOptions};
use argus::prelude::*;
use std::path::{Path, PathBuf};

fn golden_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(rel)
}

fn check_golden(rel: &str, actual: &str) {
    let path = golden_path(rel);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create", path.display())
    });
    assert_eq!(
        expected,
        actual,
        "{} drifted; if intentional, re-bless with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Light structural validation shared by both snapshot tests: the JSON
/// must at least contain the advertised top-level keys.
fn assert_has_keys(json: &str, keys: &[&str]) {
    for k in keys {
        assert!(json.contains(&format!("\"{k}\":")), "missing key {k:?} in {json}");
    }
}

#[test]
fn analyze_json_snapshots_on_corpus() {
    // One proved entry, one proved-with-multiple-sccs entry, one
    // zero-weight-cycle control: together they exercise every outcome
    // branch of the serializer.
    for name in ["append_bff", "perm", "loop_mutual"] {
        let entry = argus::corpus::find(name).expect(name);
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let options = AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() };
        let report = analyze(&program, &query, adornment, &options);
        let json = report.to_json();
        assert_has_keys(&json, &["query", "verdict", "sccs"]);
        check_golden(&format!("analyze/{name}.json"), &json);
    }
}

/// Replace every integer that appears as a JSON *value* (a digit run
/// right after `:`) with `0`, leaving key names (`le_50`) and the schema
/// string untouched. Counter values vary run to run; the key set, nesting,
/// and field order must not.
fn normalize_counter_values(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == ':' && chars.peek().is_some_and(|d| d.is_ascii_digit()) {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
            out.push('0');
        }
    }
    out
}

/// The `/metrics` snapshot is a public machine-readable surface like the
/// analyze JSON: pin its exact shape (schema string, key set, field
/// order) with counter values normalized to `0`.
#[test]
fn serve_metrics_snapshot_schema() {
    use argus::serve::{ServeOptions, ServerState};
    let state = ServerState::new(ServeOptions::default());
    let request = |path: &str, body: &[u8]| argus::serve::Request {
        method: if body.is_empty() { "GET" } else { "POST" }.to_string(),
        path: path.to_string(),
        headers: Vec::new(),
        body: body.to_vec(),
        keep_alive: true,
    };
    // Touch every counter family: a computed analyze, a cached repeat, a
    // malformed request, and a metrics read.
    let entry = argus::corpus::find("append_bff").unwrap();
    let body = format!(
        "{{\"program\":{},\"query\":{},\"adornment\":{}}}",
        argus::serve::jsonval::json_str(entry.source),
        argus::serve::jsonval::json_str(entry.query),
        argus::serve::jsonval::json_str(entry.adornment)
    );
    assert_eq!(state.handle(&request("/v1/analyze", body.as_bytes())).status, 200);
    assert_eq!(state.handle(&request("/v1/analyze", body.as_bytes())).status, 200);
    assert_eq!(state.handle(&request("/v1/analyze", b"not json")).status, 400);
    assert_eq!(state.handle(&request("/metrics", b"")).status, 200);

    let snapshot = state.metrics_snapshot();
    assert!(snapshot.contains(argus::serve::METRICS_SCHEMA), "{snapshot}");
    argus::serve::jsonval::parse(&snapshot).expect("metrics snapshot parses as JSON");
    check_golden("serve/metrics.json", &normalize_counter_values(&snapshot));
}

/// Pin the `argus-engine/v1` surface: a portfolio race with an SCT win
/// (later engines rewritten to `cancelled`), a single-engine run, and a
/// no-winner race, each with the per-engine stats objects included. The
/// counters are deterministic by construction (no wall clock), so the
/// snapshots pin them verbatim — any drift in SCT's graph/closure
/// accounting or θ's per-SCC counters shows up here as a reviewed diff.
#[test]
fn engine_json_snapshots_on_corpus() {
    use argus::baselines::{engine_by_id, standard_engines};
    use argus::core::run_portfolio;
    let options = AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() };
    let cases: [(&str, &str, bool); 3] = [
        ("sct_lex_reset", "portfolio", true), // sct wins, bs/uvg/naish cancelled
        ("sct_lex_reset", "sct", false),      // single engine, un-raced
        ("loop_direct", "portfolio", true),   // no winner, every verdict real
    ];
    for (name, engine, race) in cases {
        let entry = argus::corpus::find(name).expect(name);
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let engines = if engine == "portfolio" {
            standard_engines()
        } else {
            vec![engine_by_id(engine).unwrap()]
        };
        let report = run_portfolio(&engines, &program, &query, &adornment, &options, 1, race);
        let json = report.to_json(true);
        assert_has_keys(&json, &["schema", "query", "adornment", "verdict", "winner", "engines"]);
        assert!(json.contains("\"schema\":\"argus-engine/v1\""), "{json}");
        check_golden(&format!("engine/{name}-{engine}.json"), &json);
        // The text rendering and its stats block ride along in one file.
        let text = format!("{}{}", report, report.render_stats());
        check_golden(&format!("engine/{name}-{engine}.txt"), &text);
    }
}

#[test]
fn fuzz_json_snapshot() {
    let opts = FuzzOptions { seed: 1, cases: 20, jobs: 1, ..FuzzOptions::default() };
    let report = run_fuzz(&opts);
    let json = report.to_json();
    assert_has_keys(&json, &["seed", "cases", "verdicts", "shape", "violations", "warnings"]);
    check_golden("fuzz/seed1-cases20.json", &json);
}
