//! # argus-core — termination detection using argument sizes
//!
//! A faithful implementation of *Kirack Sohn & Allen Van Gelder,
//! “Termination Detection in Logic Programs using Argument Sizes”
//! (PODS 1991)*.
//!
//! The method proves that top-down (Prolog-style, left-to-right) evaluation
//! of a logic procedure terminates by finding, for every predicate of a
//! recursive SCC, a **nonnegative linear combination of bound-argument
//! sizes** that strictly decreases across every recursive call. The search
//! for the combination is itself a linear program: the universally
//! quantified decrease condition is dualized (LP duality), the coefficient
//! vectors θ appear linearly in the dual, the undistinguished dual
//! variables are eliminated by Fourier–Motzkin, and the remaining system
//! over the θ's is tested for feasibility. Mutual recursion is handled with
//! per-edge level decrements δᵢⱼ validated by a min-plus closure (§6.1) or,
//! more generally, path constraints permitting negative δ's (Appendix C).
//!
//! ```
//! use argus_core::analyze_source;
//! use argus_core::Verdict;
//!
//! // The paper's Example 3.1: perm/2 terminates with its first argument
//! // bound — a fact no earlier published method could establish.
//! let report = analyze_source(
//!     "perm([], []).\n\
//!      perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
//!      append([], Ys, Ys).\n\
//!      append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
//!     "perm/2",
//!     "bf",
//! ).unwrap();
//! assert_eq!(report.verdict, Verdict::Terminates);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod backwards;
pub mod certificate;
pub mod delta;
pub mod dual;
pub mod engine;
pub mod incremental;
pub mod json;
pub mod lexico;
pub mod negweight;
pub mod pairs;
pub mod par;
pub mod theta;

pub use analyze::{
    analyze, analyze_source, analyze_with_cache, analyze_with_caches, AnalysisOptions, BlameKind,
    DeltaMode, PairBlame, RunStats, SccAnalysis, SccOutcome, SccStats, TerminationReport, Verdict,
};
pub use argus_linear::{FmStats, FmTier};
pub use backwards::{
    check_condition, infer_conditions, infer_conditions_for, BackwardsOptions, CandidateOutcome,
    InferenceReport, ProbeFn, ProbeHook, TerminationCondition,
};
pub use certificate::{verify_report, CertificateError};
pub use delta::{assign_deltas, DeltaAssignment, DeltaOutcome};
pub use engine::{
    run_portfolio, run_portfolio_with_memo, Engine, EngineCtx, EngineEntry, EngineRun,
    EngineVerdict, PortfolioReport,
};
pub use incremental::{IncrementalRunStats, SccCache};
pub use lexico::{prove_lexicographic, prove_scc_lexicographic, LexicographicProof};
pub use pairs::{build_pair, ProjectionCache, RuleSubgoalSystem};
pub use theta::ThetaSpace;
