//! Every proof produced on the corpus is independently certified (primal
//! LP re-check of the θ/δ witness), and the Appendix A transformations are
//! validated as semantics-preserving by comparing SLD answer sets before
//! and after.

use argus::interp::sld::{solve, InterpOptions};
use argus::logic::parser::parse_query;
use argus::logic::{Norm, PredKey};
use argus::prelude::*;
use std::collections::BTreeSet;

#[test]
fn every_corpus_proof_is_certified() {
    let mut total_checks = 0usize;
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        if report.verdict != Verdict::Terminates {
            continue;
        }
        match argus::core::verify_report(&report, Norm::StructuralSize) {
            Ok(n) => total_checks += n,
            Err(e) => panic!("{}: certificate rejected: {e}\n{report}", entry.name),
        }
    }
    assert!(total_checks >= 20, "expected many pair checks, got {total_checks}");
}

/// Transformations preserve the answers of the query predicate: for each
/// corpus entry where the Appendix A driver changes the program, the SLD
/// answer sets for the sample queries must be identical before and after.
#[test]
fn transformations_preserve_answers() {
    let opts = InterpOptions { max_steps: 60_000, ..InterpOptions::default() };
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, _) = entry.query_key();
        let roots: BTreeSet<PredKey> = [query.clone()].into_iter().collect();
        let (transformed, _) = argus::transform::transform_fixed_phases(&program, &roots, 3);
        if transformed == program {
            continue;
        }
        for q in entry.sample_queries {
            let goals = parse_query(q).unwrap();
            let before = solve(&program, &goals, &opts);
            let after = solve(&transformed, &goals, &opts);
            // Compare answer multisets only when both complete (the
            // nonterminating controls exhaust the budget both ways).
            if before.terminated() && after.terminated() {
                let (
                    argus::interp::Outcome::Completed { solutions: s1, .. },
                    argus::interp::Outcome::Completed { solutions: s2, .. },
                ) = (&before, &after)
                else {
                    unreachable!()
                };
                let mut a: Vec<String> = s1.iter().map(|m| format!("{m:?}")).collect();
                let mut b: Vec<String> = s2.iter().map(|m| format!("{m:?}")).collect();
                a.sort();
                b.sort();
                assert_eq!(
                    a, b,
                    "{}: answers changed for {q}\nbefore: {before:?}\nafter: {after:?}\ntransformed:\n{transformed}",
                    entry.name
                );
            } else {
                assert_eq!(
                    before.terminated(),
                    after.terminated(),
                    "{}: termination behaviour changed for {q}",
                    entry.name
                );
            }
        }
    }
}

/// The same check with randomized inputs on the transformation-sensitive
/// Appendix A.1 program: answers agree on every g-chain depth.
#[test]
fn appendix_a1_transform_preserves_answers_deeply() {
    let entry = argus::corpus::find("appendix_a1").unwrap();
    let program = entry.program().unwrap();
    let roots: BTreeSet<PredKey> = [PredKey::new("p", 1)].into_iter().collect();
    let (transformed, _) = argus::transform::transform_fixed_phases(&program, &roots, 3);
    let opts = InterpOptions::default();
    for depth in 0..6 {
        let mut term = String::from("c");
        for _ in 0..depth {
            term = format!("g({term})");
        }
        for wrap in ["", "f"] {
            let arg = if wrap.is_empty() { term.clone() } else { format!("f({term})") };
            let goals = parse_query(&format!("p({arg})")).unwrap();
            let before = solve(&program, &goals, &opts);
            let after = solve(&transformed, &goals, &opts);
            assert_eq!(
                before.solution_count() > 0,
                after.solution_count() > 0,
                "p({arg}) provability changed"
            );
        }
    }
}

/// Failed proofs on the corpus carry verifiable Farkas refutations of
/// their θ systems (when found within budget): the "no linear decrease"
/// claim is as checkable as the proofs.
#[test]
fn refutations_verify_on_corpus() {
    let mut verified = 0usize;
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        for scc in &report.sccs {
            if let Some(ok) = scc.verify_refutation() {
                assert!(ok, "{}: invalid refutation certificate", entry.name);
                verified += 1;
            }
        }
    }
    assert!(verified >= 2, "expected refutations on the loop controls, got {verified}");
}
