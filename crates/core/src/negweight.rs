//! Appendix C: allowing negative `δᵢⱼ` via path constraints.
//!
//! Instead of fixing each `δᵢⱼ ∈ {0, 1}` up front (§6.1), the δ's become
//! variables, and positivity of every cycle is enforced by Papadimitriou's
//! path-constraint encoding: introduce `πᵢⱼ` ("shortest path" lower
//! bounds) with
//!
//! ```text
//! πᵢⱼ ≤ δᵢⱼ                                (base case, for each edge i→j)
//! πᵢⱼ ≤ δᵢₖ + πₖⱼ      for k ∉ {i, j}     (first edge + remaining path)
//! πᵢᵢ ≥ 1                                  (positive cycles)
//! ```
//!
//! By induction `πᵢⱼ` is forced below the weight of *every* path `i → j`,
//! so the system is satisfiable exactly when the δ's give every cycle
//! weight ≥ 1. The π's are then eliminated by Fourier–Motzkin ("our
//! program quietly runs Fourier-Motzkin elimination on the πᵢⱼ"), leaving
//! linear constraints over the δ's alone, which join the θ feasibility
//! system.

use argus_linear::fm::{self, FmResult};
use argus_linear::{Constraint, ConstraintSystem, LinExpr, Rat, Rel, Var};
use argus_logic::PredKey;
use std::collections::{BTreeMap, BTreeSet};

/// Allocation of symbolic δ variables, one per SCC dependency edge.
#[derive(Debug, Clone, Default)]
pub struct DeltaVars {
    map: BTreeMap<(PredKey, PredKey), Var>,
}

impl DeltaVars {
    /// Allocate δ variables for `edges`, starting at `base`.
    pub fn allocate(edges: &BTreeSet<(PredKey, PredKey)>, base: Var) -> DeltaVars {
        let map = edges.iter().enumerate().map(|(k, e)| (e.clone(), base + k)).collect();
        DeltaVars { map }
    }

    /// The variable for edge `(head, sub)`.
    pub fn get(&self, head: &PredKey, sub: &PredKey) -> Option<Var> {
        self.map.get(&(head.clone(), sub.clone())).copied()
    }

    /// All δ variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.map.values().copied()
    }

    /// Number of δ variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff there are no δ variables.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(edge, var)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(PredKey, PredKey), &Var)> {
        self.map.iter()
    }
}

/// Build the positive-cycle constraint system over the δ variables of
/// `deltas` for an SCC with `members`, eliminating the auxiliary π's.
/// `pi_base` must leave room: π uses `pi_base .. pi_base + n²` indices.
pub fn positive_cycle_constraints(
    members: &[PredKey],
    deltas: &DeltaVars,
    pi_base: Var,
) -> ConstraintSystem {
    let n = members.len();
    let index: BTreeMap<&PredKey, usize> =
        members.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let pi = |i: usize, j: usize| -> Var { pi_base + i * n + j };

    let mut sys = ConstraintSystem::new();
    // Base cases: π_ij <= δ_ij for existing edges.
    for ((h, s), &dv) in deltas.iter() {
        let (i, j) = (index[h], index[s]);
        sys.push(Constraint {
            expr: {
                let mut e = LinExpr::var(pi(i, j));
                e.add_term(dv, -Rat::one());
                e
            },
            rel: Rel::Le,
        });
    }
    // Path decomposition: π_ij <= δ_ik + π_kj  (k ≠ i, k ≠ j; edge i→k
    // must exist).
    for ((h, k_pred), &dv) in deltas.iter() {
        let i = index[h];
        let k = index[k_pred];
        if i == k {
            continue;
        }
        for j in 0..n {
            if j == k {
                continue;
            }
            let mut e = LinExpr::var(pi(i, j));
            e.add_term(dv, -Rat::one());
            e.add_term(pi(k, j), -Rat::one());
            sys.push(Constraint { expr: e, rel: Rel::Le });
        }
    }
    // Positive cycles: π_ii >= 1.
    for i in 0..n {
        sys.push(Constraint {
            expr: {
                let mut e = LinExpr::constant(Rat::one());
                e.add_term(pi(i, i), -Rat::one());
                e
            },
            rel: Rel::Le,
        });
    }

    // Eliminate the π's; keep only δ variables.
    let keep: BTreeSet<Var> = deltas.vars().collect();
    match fm::project_onto(&sys, &keep) {
        FmResult::Projected(out) => out.dedup(),
        FmResult::Infeasible => {
            // π's can always be pushed low enough unless a πii ≥ 1 row has
            // no path support; that manifests as constraints on δ, not
            // infeasibility. Treat defensively as unsatisfiable-by-δ.
            let mut bad = ConstraintSystem::new();
            bad.push(Constraint { expr: LinExpr::constant(Rat::one()), rel: Rel::Le });
            bad
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_linear::simplex::feasible_point;

    fn pk(n: &str) -> PredKey {
        PredKey::new(n, 1)
    }

    fn edge(a: &str, b: &str) -> (PredKey, PredKey) {
        (pk(a), pk(b))
    }

    #[test]
    fn two_cycle_requires_positive_sum() {
        // Edges p→q and q→p: constraints must force δpq + δqp >= 1.
        let members = vec![pk("p"), pk("q")];
        let edges: BTreeSet<_> = [edge("p", "q"), edge("q", "p")].into_iter().collect();
        let dv = DeltaVars::allocate(&edges, 0);
        let sys = positive_cycle_constraints(&members, &dv, 10);
        let d_pq = dv.get(&pk("p"), &pk("q")).unwrap();
        let d_qp = dv.get(&pk("q"), &pk("p")).unwrap();
        let at = |a: i64, b: i64| {
            let mut pt = BTreeMap::new();
            pt.insert(d_pq, Rat::from_int(a));
            pt.insert(d_qp, Rat::from_int(b));
            pt
        };
        assert!(sys.holds_at(&at(1, 0)), "{sys}");
        assert!(sys.holds_at(&at(0, 1)));
        assert!(sys.holds_at(&at(-1, 2)), "negative delta allowed when cycle positive");
        assert!(!sys.holds_at(&at(0, 0)), "zero cycle must be excluded:\n{sys}");
        assert!(!sys.holds_at(&at(2, -2)));
    }

    #[test]
    fn self_loop_requires_delta_ge_one() {
        let members = vec![pk("p")];
        let edges: BTreeSet<_> = [edge("p", "p")].into_iter().collect();
        let dv = DeltaVars::allocate(&edges, 0);
        let sys = positive_cycle_constraints(&members, &dv, 10);
        let d = dv.get(&pk("p"), &pk("p")).unwrap();
        let at = |a: i64| {
            let mut pt = BTreeMap::new();
            pt.insert(d, Rat::from_int(a));
            pt
        };
        assert!(sys.holds_at(&at(1)));
        assert!(sys.holds_at(&at(5)));
        assert!(!sys.holds_at(&at(0)), "{sys}");
    }

    #[test]
    fn triangle_cycles() {
        // a→b→c→a plus self loop a→a.
        let members = vec![pk("a"), pk("b"), pk("c")];
        let edges: BTreeSet<_> =
            [edge("a", "b"), edge("b", "c"), edge("c", "a"), edge("a", "a")].into_iter().collect();
        let dv = DeltaVars::allocate(&edges, 0);
        let sys = positive_cycle_constraints(&members, &dv, 10);
        let v = |a: &str, b: &str| dv.get(&pk(a), &pk(b)).unwrap();
        let at = |ab: i64, bc: i64, ca: i64, aa: i64| {
            let mut pt = BTreeMap::new();
            pt.insert(v("a", "b"), Rat::from_int(ab));
            pt.insert(v("b", "c"), Rat::from_int(bc));
            pt.insert(v("c", "a"), Rat::from_int(ca));
            pt.insert(v("a", "a"), Rat::from_int(aa));
            pt
        };
        assert!(sys.holds_at(&at(0, 0, 1, 1)), "{sys}");
        assert!(sys.holds_at(&at(-1, 1, 1, 1)));
        assert!(!sys.holds_at(&at(0, 0, 0, 1)), "triangle cycle weight 0");
        assert!(!sys.holds_at(&at(1, 1, 1, 0)), "self loop weight 0");
        // The projected system is satisfiable at all.
        assert!(feasible_point(&sys, &BTreeSet::new()).is_some());
    }

    #[test]
    fn no_edges_no_constraints() {
        let members = vec![pk("p")];
        let edges: BTreeSet<(PredKey, PredKey)> = BTreeSet::new();
        let dv = DeltaVars::allocate(&edges, 0);
        let sys = positive_cycle_constraints(&members, &dv, 10);
        // π_ii >= 1 is vacuously satisfiable by a large π with no upper
        // bound... π_ii has no upper bound rows, so elimination drops the
        // row entirely: no δ constraints remain.
        assert!(feasible_point(&sys, &BTreeSet::new()).is_some());
    }
}
