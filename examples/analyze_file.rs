//! Analyze a Prolog file from the command line.
//!
//! ```sh
//! cargo run --example analyze_file -- path/to/program.pl 'qsort/2' bf
//! # or, with no arguments, a demo program:
//! cargo run --example analyze_file
//! ```
//!
//! A miniature of what a deductive-database front end would do with this
//! library: parse user rules, analyze the requested query mode, and print
//! either the decrease certificate or the reason nothing was found.

use argus::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (source, query, adornment): (String, String, String) = match args.as_slice() {
        [] => (
            "qsort([], []).\n\
             qsort([X|Xs], S) :- part(Xs, X, L, G), qsort(L, SL), qsort(G, SG),\n\
                                 app(SL, [X|SG], S).\n\
             part([], _, [], []).\n\
             part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).\n\
             part([Y|Ys], X, L, [Y|G]) :- Y > X, part(Ys, X, L, G).\n\
             app([], Ys, Ys).\n\
             app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n"
                .to_string(),
            "qsort/2".to_string(),
            "bf".to_string(),
        ),
        [path, query, adornment] => {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (source, query.clone(), adornment.clone())
        }
        _ => {
            eprintln!("usage: analyze_file [<file.pl> <name/arity> <adornment>]");
            return ExitCode::FAILURE;
        }
    };

    let report = match analyze_source(&source, &query, &adornment) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{report}");
    println!("-- size relations used --");
    let keys: Vec<_> = report.size_relations.iter().map(|(k, _)| k.clone()).collect();
    for k in keys {
        println!("{}", report.size_relations.render(&k));
    }
    println!("-- reduced theta constraints --");
    for scc in &report.sccs {
        for line in scc.render_constraints() {
            println!("{line}");
        }
    }

    match report.verdict {
        Verdict::Terminates => ExitCode::SUCCESS,
        _ => ExitCode::from(2),
    }
}
