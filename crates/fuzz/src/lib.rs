//! # argus-fuzz — randomized soundness harness for the termination analyzer
//!
//! The analyzer's contract is *soundness*: a `Terminates` verdict must mean
//! top-down evaluation really terminates for the claimed mode. This crate
//! turns that contract into a continuously testable invariant:
//!
//! * [`gen`] emits seeded, well-moded logic programs with tunable shape
//!   (SCC count, mutual-recursion width, nonlinear recursion, list/nat
//!   measures, optional same-size "growth" recursion);
//! * [`oracle`] runs three checks per case — differential soundness
//!   against the SLD interpreter, certificate cross-checks (both
//!   directions), and metamorphic invariance under semantics-preserving
//!   program rewrites — plus three opt-in ones: byte-identical round-trips
//!   through a live `argus serve` (`--serve`), confirmation of every
//!   backwards-inferred termination-condition disjunct (`--infer`), and a
//!   cross-engine portfolio differential in which every registered
//!   engine's claimed proof must survive the interpreter and θ's
//!   zero-weight-cycle evidence (`--portfolio`), and a seventh
//!   (`--incremental`) that replays single-clause edits through the
//!   per-SCC incremental memo and requires the report to stay
//!   byte-identical to a from-scratch analysis at every step;
//! * [`shrink`] minimizes any failing program to a small reproducer.
//!
//! Everything is keyed on [`argus_prng::Rng64`], so a run is identified by
//! `(seed, cases)` alone and replays byte-for-byte on any platform. The
//! case loop is parallelized with the same deterministic fork-join used by
//! the analyzer itself, so the report — including its JSON form — is
//! identical at every `--jobs` setting.

#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod shrink;

use argus_core::par::{effective_workers, par_map_indexed};
use argus_core::{analyze, Verdict};
use argus_logic::program::Program;
use argus_prng::Rng64;
use gen::{generate, GenCase, GenOptions};
use oracle::{
    analysis_options, check_certificate, check_differential, check_incremental, check_infer,
    check_metamorphic, check_portfolio, check_serve, theta_refutes_unknown, ServeCheckFailure,
    ViolationKind,
};
use std::fmt;
use std::fmt::Write as _;

/// Options for a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed; case `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: usize,
    /// Worker threads for the case loop (`0` = one per core). The report
    /// is byte-identical at every setting.
    pub jobs: usize,
    /// Interpreter step budget for the differential oracle.
    pub max_steps: u64,
    /// Candidate-evaluation budget for the shrinker.
    pub shrink_budget: usize,
    /// Run the metamorphic oracle (on by default; it multiplies analysis
    /// cost per case by the number of transforms).
    pub metamorphic: bool,
    /// Run the brute-force θ completeness-drift detector (warn-only).
    pub theta_search: bool,
    /// Program-shape knobs.
    pub gen: GenOptions,
    /// Round-trip every case through a running `argus serve` instance at
    /// this address and require byte-identical reports (`--serve ADDR`).
    pub serve_addr: Option<String>,
    /// Run the backwards-inference soundness oracle (`--infer`): every
    /// disjunct of every inferred condition must be confirmed by the
    /// forward analyzer, the certificate checker, and the interpreter.
    /// Off by default — it multiplies analysis cost per case.
    pub infer: bool,
    /// Run the cross-engine portfolio oracle (`--portfolio`): every
    /// registered engine analyzes every case un-raced, and any claimed
    /// proof is checked against the interpreter and against θ's
    /// zero-weight-cycle evidence. Off by default — it runs five engines
    /// per case.
    pub portfolio: bool,
    /// Run the incremental-analysis oracle (`--incremental`): mutate the
    /// generated program one clause at a time and require every
    /// memo-backed re-analysis to be byte-identical to a from-scratch
    /// run. Off by default — it re-analyzes the case ~3× per clause.
    pub incremental: bool,
    /// Test-only hook: treat every `Unknown` verdict as a claimed
    /// `Terminates` so the differential oracle and the shrinker can be
    /// exercised end-to-end. Never set outside tests.
    #[doc(hidden)]
    pub inject_soundness_bug: bool,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 0,
            cases: 100,
            jobs: 0,
            max_steps: 300_000,
            shrink_budget: 400,
            metamorphic: true,
            theta_search: true,
            gen: GenOptions::default(),
            serve_addr: None,
            infer: false,
            portfolio: false,
            incremental: false,
            inject_soundness_bug: false,
        }
    }
}

/// One confirmed oracle failure, with its minimized reproducer.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the case within the run.
    pub case_index: usize,
    /// The case's derived seed (replays the case alone).
    pub case_seed: u64,
    /// Which oracle failed.
    pub kind: ViolationKind,
    /// Human-readable failure detail.
    pub detail: String,
    /// The original generated program.
    pub program: String,
    /// The shrunk reproducer.
    pub shrunk: String,
    /// Clause count of the shrunk reproducer.
    pub shrunk_clauses: usize,
    /// Query spec (`name/arity`).
    pub query: String,
    /// Query adornment (`b`/`f` string).
    pub adornment: String,
}

/// A warn-only observation (completeness drift).
#[derive(Debug, Clone)]
pub struct Warning {
    /// Index of the case within the run.
    pub case_index: usize,
    /// Stable warning label.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Aggregate statistics over the generated population.
#[derive(Debug, Clone, Default)]
pub struct ShapeStats {
    /// Total rules across all cases.
    pub rules_total: usize,
    /// Smallest program, in rules.
    pub rules_min: usize,
    /// Largest program, in rules.
    pub rules_max: usize,
    /// Cases containing a nonlinear recursive clause.
    pub nonlinear_cases: usize,
    /// Cases containing a same-size/growing recursive call.
    pub growth_cases: usize,
}

/// Result of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The master seed.
    pub seed: u64,
    /// Number of cases run.
    pub cases: usize,
    /// `Terminates` verdict count.
    pub terminates: usize,
    /// `Unknown` verdict count.
    pub unknown: usize,
    /// `ZeroWeightCycle` verdict count.
    pub zero_weight_cycle: usize,
    /// Shape statistics.
    pub shape: ShapeStats,
    /// Confirmed violations (hard failures).
    pub violations: Vec<Violation>,
    /// Warn-only observations.
    pub warnings: Vec<Warning>,
}

impl FuzzReport {
    /// True iff no oracle reported a hard violation.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic JSON rendering (no timing, no host information), so
    /// output is byte-identical across runs and `--jobs` settings.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"seed\":{},\"cases\":{},\"verdicts\":{{\"terminates\":{},\"unknown\":{},\"zero_weight_cycle\":{}}},",
            self.seed, self.cases, self.terminates, self.unknown, self.zero_weight_cycle
        );
        let _ = write!(
            s,
            "\"shape\":{{\"rules_total\":{},\"rules_min\":{},\"rules_max\":{},\"nonlinear_cases\":{},\"growth_cases\":{}}},",
            self.shape.rules_total,
            self.shape.rules_min,
            self.shape.rules_max,
            self.shape.nonlinear_cases,
            self.shape.growth_cases
        );
        s.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"case\":{},\"case_seed\":{},\"kind\":\"{}\",\"detail\":\"{}\",\"query\":\"{}\",\"adornment\":\"{}\",\"shrunk_clauses\":{},\"program\":\"{}\",\"shrunk\":\"{}\"}}",
                v.case_index,
                v.case_seed,
                v.kind.label(),
                esc(&v.detail),
                esc(&v.query),
                esc(&v.adornment),
                v.shrunk_clauses,
                esc(&v.program),
                esc(&v.shrunk)
            );
        }
        s.push_str("],\"warnings\":[");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"case\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                w.case_index,
                w.kind,
                esc(&w.detail)
            );
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz: seed {} — {} cases: {} terminates, {} unknown, {} zero-weight-cycle",
            self.seed, self.cases, self.terminates, self.unknown, self.zero_weight_cycle
        )?;
        writeln!(
            f,
            "shape: {} rules total (min {}, max {}), {} nonlinear, {} with growth",
            self.shape.rules_total,
            self.shape.rules_min,
            self.shape.rules_max,
            self.shape.nonlinear_cases,
            self.shape.growth_cases
        )?;
        for w in &self.warnings {
            writeln!(f, "warning [case {}] {}: {}", w.case_index, w.kind, w.detail)?;
        }
        for v in &self.violations {
            writeln!(
                f,
                "VIOLATION [case {} seed {}] {}: {}",
                v.case_index,
                v.case_seed,
                v.kind.label(),
                v.detail
            )?;
            writeln!(
                f,
                "  query {} mode {} — shrunk to {} clause(s):",
                v.query, v.adornment, v.shrunk_clauses
            )?;
            for line in v.shrunk.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        if self.clean() {
            writeln!(f, "no violations")?;
        }
        Ok(())
    }
}

/// Derive the per-case seed from the master seed. Index 0 is the master
/// seed itself, so `--seed <case-seed> --cases 1` replays exactly the
/// offending case; the odd-multiple stride keeps later indices
/// uncorrelated after `Rng64`'s own SplitMix scrambling.
pub fn case_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Outcome of one case, before aggregation.
struct CaseResult {
    verdict: Verdict,
    rules: usize,
    nonlinear: bool,
    growth: bool,
    violation: Option<Violation>,
    warning: Option<Warning>,
}

/// The failing-oracle predicate the shrinker replays: re-analyze the
/// candidate and re-run only the oracle that originally failed.
fn still_fails(
    candidate: &Program,
    case: &GenCase,
    kind: &ViolationKind,
    transform_seed: u64,
    opts: &FuzzOptions,
) -> bool {
    let aopts = analysis_options();
    let report = analyze(candidate, &case.query, case.adornment.clone(), &aopts);
    let claimed = report.verdict == Verdict::Terminates
        || (opts.inject_soundness_bug && report.verdict == Verdict::Unknown);
    match kind {
        ViolationKind::Soundness => {
            claimed && check_differential(candidate, &case.query, opts.max_steps).is_err()
        }
        ViolationKind::Certificate => {
            report.verdict == Verdict::Terminates && check_certificate(&report, &aopts).is_err()
        }
        ViolationKind::Metamorphic | ViolationKind::JobsDivergence => {
            let c2 = GenCase { program: candidate.clone(), ..case.clone() };
            check_metamorphic(&c2, &report, transform_seed).is_err()
        }
        ViolationKind::InferSoundness => check_infer(candidate, opts.max_steps).is_err(),
        ViolationKind::Portfolio => {
            check_portfolio(candidate, &case.query, &case.adornment, report.verdict, opts.max_steps)
                .is_err()
        }
        ViolationKind::IncrementalDivergence => {
            check_incremental(candidate, &case.query, &case.adornment).is_err()
        }
        ViolationKind::ServeDivergence => {
            let Some(addr) = opts.serve_addr.as_deref() else { return false };
            // Only a confirmed divergence keeps the shrinker going; a
            // transport hiccup must not steer minimization.
            matches!(
                check_serve(candidate, &case.query, &case.adornment, &report, addr),
                Err(ServeCheckFailure::Divergence(_))
            )
        }
    }
}

/// Run one case end to end.
fn run_case(index: usize, opts: &FuzzOptions) -> CaseResult {
    let cs = case_seed(opts.seed, index);
    let mut rng = Rng64::new(cs);
    let case = generate(&mut rng, &opts.gen);
    let transform_seed = cs.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let aopts = analysis_options();
    let report = analyze(&case.program, &case.query, case.adornment.clone(), &aopts);

    let mut result = CaseResult {
        verdict: report.verdict,
        rules: case.program.rules.len(),
        nonlinear: case.has_nonlinear,
        growth: case.has_growth,
        violation: None,
        warning: None,
    };

    let claimed_terminates = report.verdict == Verdict::Terminates
        || (opts.inject_soundness_bug && report.verdict == Verdict::Unknown);

    let mut failure: Option<(ViolationKind, String)> = None;

    // Oracle 1: differential soundness.
    if claimed_terminates {
        if let Err(detail) = check_differential(&case.program, &case.query, opts.max_steps) {
            failure = Some((ViolationKind::Soundness, detail));
        }
    }
    // Oracle 2a: certificate check on proofs.
    if failure.is_none() && report.verdict == Verdict::Terminates {
        if let Err(detail) = check_certificate(&report, &aopts) {
            failure = Some((ViolationKind::Certificate, detail));
        }
    }
    // Oracle 2b: completeness drift (warn-only).
    if failure.is_none() && opts.theta_search && report.verdict == Verdict::Unknown {
        if let Some(detail) = theta_refutes_unknown(&report, &aopts) {
            result.warning =
                Some(Warning { case_index: index, kind: "completeness-drift", detail });
        }
    }
    // Oracle 3: metamorphic invariance.
    if failure.is_none() && opts.metamorphic {
        if let Err((kind, detail)) = check_metamorphic(&case, &report, transform_seed) {
            failure = Some((kind, detail));
        }
    }
    // Oracle 5 (opt-in): every inferred condition disjunct is confirmed
    // by the forward analyzer, the checker, and the interpreter.
    if failure.is_none() && opts.infer {
        if let Err(detail) = check_infer(&case.program, opts.max_steps) {
            failure = Some((ViolationKind::InferSoundness, detail));
        }
    }
    // Oracle 6 (opt-in): cross-engine portfolio differential — any
    // engine's claimed proof must survive the interpreter and θ's
    // zero-weight-cycle evidence.
    if failure.is_none() && opts.portfolio {
        if let Err(detail) = check_portfolio(
            &case.program,
            &case.query,
            &case.adornment,
            report.verdict,
            opts.max_steps,
        ) {
            failure = Some((ViolationKind::Portfolio, detail));
        }
    }
    // Oracle 7 (opt-in): the per-SCC incremental memo is invisible in the
    // output under a single-clause edit stream.
    if failure.is_none() && opts.incremental {
        if let Err(detail) = check_incremental(&case.program, &case.query, &case.adornment) {
            failure = Some((ViolationKind::IncrementalDivergence, detail));
        }
    }
    // Oracle 4 (opt-in): byte-identical round-trip through a live server.
    if failure.is_none() {
        if let Some(addr) = opts.serve_addr.as_deref() {
            if let Err(f) = check_serve(&case.program, &case.query, &case.adornment, &report, addr)
            {
                let detail = match f {
                    ServeCheckFailure::Transport(d) => format!("transport: {d}"),
                    ServeCheckFailure::Divergence(d) => d,
                };
                failure = Some((ViolationKind::ServeDivergence, detail));
            }
        }
    }

    if let Some((kind, detail)) = failure {
        let mut fails =
            |candidate: &Program| still_fails(candidate, &case, &kind, transform_seed, opts);
        let shrunk = shrink::shrink(&case.program, &mut fails, opts.shrink_budget);
        result.violation = Some(Violation {
            case_index: index,
            case_seed: cs,
            kind,
            detail,
            program: case.program.to_string(),
            shrunk: shrunk.to_string(),
            shrunk_clauses: shrunk.rules.len(),
            query: case.query.to_string(),
            adornment: case.adornment.to_string(),
        });
    }
    result
}

/// Run the harness.
pub fn run(opts: &FuzzOptions) -> FuzzReport {
    let indices: Vec<usize> = (0..opts.cases).collect();
    let workers = effective_workers(opts.jobs, indices.len());
    let results = par_map_indexed(&indices, workers, |_, &i| run_case(i, opts));

    let mut report = FuzzReport {
        seed: opts.seed,
        cases: opts.cases,
        terminates: 0,
        unknown: 0,
        zero_weight_cycle: 0,
        shape: ShapeStats { rules_min: usize::MAX, ..ShapeStats::default() },
        violations: Vec::new(),
        warnings: Vec::new(),
    };
    for r in results {
        match r.verdict {
            Verdict::Terminates => report.terminates += 1,
            Verdict::Unknown => report.unknown += 1,
            Verdict::ZeroWeightCycle => report.zero_weight_cycle += 1,
        }
        report.shape.rules_total += r.rules;
        report.shape.rules_min = report.shape.rules_min.min(r.rules);
        report.shape.rules_max = report.shape.rules_max.max(r.rules);
        report.shape.nonlinear_cases += usize::from(r.nonlinear);
        report.shape.growth_cases += usize::from(r.growth);
        if let Some(v) = r.violation {
            report.violations.push(v);
        }
        if let Some(w) = r.warning {
            report.warnings.push(w);
        }
    }
    if opts.cases == 0 {
        report.shape.rules_min = 0;
    }
    report
}

/// Render one violation as a standalone reproducer file: a commented
/// header the regression replayer parses, followed by the shrunk program.
pub fn repro_file(v: &Violation) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "% argus fuzz reproducer");
    let _ = writeln!(s, "% kind: {}", v.kind.label());
    let _ = writeln!(s, "% seed: {}", v.case_seed);
    let _ = writeln!(s, "% query: {}", v.query);
    let _ = writeln!(s, "% adornment: {}", v.adornment);
    let _ = writeln!(s, "% detail: {}", v.detail.replace('\n', " "));
    s.push_str(&v.shrunk);
    if !s.ends_with('\n') {
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_deterministic_across_jobs() {
        let base = FuzzOptions { cases: 12, seed: 7, ..FuzzOptions::default() };
        let a = run(&FuzzOptions { jobs: 1, ..base.clone() });
        let b = run(&FuzzOptions { jobs: 4, ..base.clone() });
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn single_case_replay_uses_the_printed_seed_directly() {
        // A violation report prints case_seed; `--seed <case_seed> --cases 1`
        // must regenerate the same program, i.e. index 0 is the identity.
        for s in [0u64, 1, 0xDEAD_BEEF] {
            for i in 0..4 {
                let cs = case_seed(s, i);
                assert_eq!(case_seed(cs, 0), cs);
            }
        }
    }

    #[test]
    fn small_run_is_clean() {
        let opts = FuzzOptions { cases: 25, seed: 3, ..FuzzOptions::default() };
        let report = run(&opts);
        assert!(report.clean(), "{report}");
        assert_eq!(report.terminates + report.unknown + report.zero_weight_cycle, 25);
    }

    #[test]
    fn infer_oracle_confirms_inferred_conditions() {
        let opts = FuzzOptions {
            cases: 10,
            seed: 11,
            metamorphic: false,
            theta_search: false,
            infer: true,
            ..FuzzOptions::default()
        };
        let report = run(&opts);
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn portfolio_oracle_small_run_is_clean() {
        let opts = FuzzOptions {
            cases: 15,
            seed: 21,
            metamorphic: false,
            theta_search: false,
            portfolio: true,
            ..FuzzOptions::default()
        };
        let report = run(&opts);
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn incremental_oracle_small_run_is_clean() {
        let opts = FuzzOptions {
            cases: 12,
            seed: 17,
            metamorphic: false,
            theta_search: false,
            incremental: true,
            ..FuzzOptions::default()
        };
        let report = run(&opts);
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn injected_soundness_bug_is_caught_and_shrunk() {
        // Flip Unknown -> claimed-Terminates: the differential oracle must
        // catch at least one runaway program, and the shrinker must cut it
        // down to a tiny reproducer.
        let opts = FuzzOptions {
            cases: 40,
            seed: 1,
            metamorphic: false,
            theta_search: false,
            inject_soundness_bug: true,
            max_steps: 30_000,
            ..FuzzOptions::default()
        };
        let report = run(&opts);
        let soundness: Vec<&Violation> =
            report.violations.iter().filter(|v| v.kind == ViolationKind::Soundness).collect();
        assert!(!soundness.is_empty(), "injected bug went unnoticed\n{report}");
        for v in soundness {
            assert!(
                v.shrunk_clauses <= 5,
                "reproducer not minimal ({} clauses):\n{}",
                v.shrunk_clauses,
                v.shrunk
            );
        }
    }
}
