//! `bench_report` — run the bench workloads at a fixed iteration count and
//! emit a machine-readable `BENCH_argus.json`, so the performance
//! trajectory of the repo is tracked from commit to commit.
//!
//! Usage:
//!
//! ```text
//! bench_report [--smoke] [--out PATH] [--baseline PATH] [--suite NAME]
//! ```
//!
//! * `--smoke` — CI-sized workloads (seconds, not minutes).
//! * `--out PATH` — where to write the report (default `BENCH_argus.json`
//!   in the current directory; `-` for stdout only).
//! * `--baseline PATH` — a previous `BENCH_argus.json`; matching case ids
//!   get `baseline_ns_per_iter` and `speedup` fields embedded so the
//!   committed report carries its own before/after comparison.
//! * `--suite NAME` — run only the named suite (repeatable). The CI
//!   regression lane uses this to run `fm_redundancy` alone.
//! * `--merge` — with `--suite`, keep the other suites' sample lines
//!   from the existing `--out` file instead of dropping them, so one
//!   suite can be re-benchmarked without discarding the rest of the
//!   committed report.

use argus_bench::json::{json_f64, json_str, scan_num_field, scan_str_field};
use argus_bench::suites::{self, Scale};
use argus_bench::timing::{render_line, Sample};
use std::collections::BTreeMap;

struct Args {
    scale: Scale,
    out: String,
    baseline: Option<String>,
    suites: Vec<String>,
    merge: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = Scale::Full;
    let mut out = "BENCH_argus.json".to_string();
    let mut baseline = None;
    let mut suites = Vec::new();
    let mut merge = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--out" => out = args.next().ok_or("--out needs a path")?,
            "--baseline" => baseline = Some(args.next().ok_or("--baseline needs a path")?),
            "--suite" => suites.push(args.next().ok_or("--suite needs a name")?),
            "--merge" => merge = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if merge && suites.is_empty() {
        return Err("--merge only makes sense with --suite".to_string());
    }
    Ok(Args { scale, out, baseline, suites, merge })
}

/// Raw sample lines of the existing report, keyed by suite (the id's
/// first path segment), preserved verbatim for `--merge`.
fn read_kept_lines(path: &str, rerun: &[String]) -> Result<BTreeMap<String, Vec<String>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut kept: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in text.lines() {
        let Some(id) = scan_str_field(line, "id") else { continue };
        let suite = id.split('/').next().unwrap_or_default().to_string();
        if rerun.contains(&suite) {
            continue;
        }
        kept.entry(suite).or_default().push(line.trim_end_matches(',').to_string());
    }
    Ok(kept)
}

/// Read `id → ns_per_iter` back from a previous report. Only understands
/// the one-sample-per-line format this binary emits.
fn read_baseline(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut map = BTreeMap::new();
    for line in text.lines() {
        if let (Some(id), Some(ns)) =
            (scan_str_field(line, "id"), scan_num_field(line, "ns_per_iter"))
        {
            map.insert(id, ns);
        }
    }
    if map.is_empty() {
        return Err(format!("no samples found in baseline {path}"));
    }
    Ok(map)
}

fn render_sample(s: &Sample, baseline: &BTreeMap<String, f64>) -> String {
    let mut obj = format!(
        "    {{\"id\": {}, \"iters\": {}, \"ns_per_iter\": {}",
        json_str(&s.id()),
        s.iters,
        json_f64(s.ns_per_iter)
    );
    if let Some(base) = baseline.get(&s.id()) {
        obj.push_str(&format!(
            ", \"baseline_ns_per_iter\": {}, \"speedup\": {}",
            json_f64(*base),
            json_f64_ratio(*base, s.ns_per_iter)
        ));
    }
    if !s.counters.is_empty() {
        let fields: Vec<String> = s.counters.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        obj.push_str(&format!(", \"counters\": {{{}}}", fields.join(", ")));
    }
    obj.push('}');
    obj
}

fn render_report(mode: Scale, lines: &[String]) -> String {
    format!(
        "{{\n  \"schema\": \"argus-bench-report/v1\",\n  \"mode\": {},\n  \"samples\": [\n{}\n  ]\n}}\n",
        json_str(if mode == Scale::Smoke { "smoke" } else { "full" }),
        lines.join(",\n")
    )
}

fn json_f64_ratio(base: f64, now: f64) -> String {
    if now > 0.0 && base.is_finite() {
        format!("{:.2}", base / now)
    } else {
        "null".to_string()
    }
}

fn main() {
    let Args { scale, out, baseline: baseline_path, suites: only, merge } = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_report: {e}");
            std::process::exit(1);
        }
    };
    let known = suites::all_suites();
    for s in &only {
        if !known.iter().any(|(name, _)| name == s) {
            eprintln!("bench_report: unknown suite `{s}`");
            std::process::exit(1);
        }
    }
    let baseline = match baseline_path.as_deref().map(read_baseline).transpose() {
        Ok(b) => b.unwrap_or_default(),
        Err(e) => {
            eprintln!("bench_report: {e}");
            std::process::exit(1);
        }
    };
    let kept = if merge {
        match read_kept_lines(&out, &only) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("bench_report: --merge: {e}");
                std::process::exit(1);
            }
        }
    } else {
        BTreeMap::new()
    };

    let mut lines = Vec::new();
    let mut ran = 0usize;
    for (name, f) in known {
        if only.is_empty() || only.iter().any(|s| s == name) {
            eprintln!("== suite: {name}");
            let suite = f(scale);
            for s in &suite {
                eprintln!("{}", render_line(s));
                lines.push(render_sample(s, &baseline));
            }
            ran += suite.len();
        } else if let Some(old) = kept.get(name) {
            lines.extend(old.iter().cloned());
        }
    }

    let report = render_report(scale, &lines);
    if out == "-" {
        println!("{report}");
    } else {
        if let Err(e) = std::fs::write(&out, &report) {
            eprintln!("bench_report: write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out} ({ran} fresh samples, {} total)", lines.len());
    }
}
