//! Machine-readable report serialization.
//!
//! A small, dependency-free JSON emitter for [`TerminationReport`], so the
//! CLI (and any embedding tool) can archive or post-process verdicts
//! without parsing the human-oriented `Display` output. Only emission is
//! provided — reports are produced, not consumed, by this library.

use crate::analyze::{SccOutcome, TerminationReport, Verdict};
use std::fmt::Write as _;

/// Escape a string for a JSON literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_str(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let inner: Vec<String> = items.into_iter().collect();
    format!("[{}]", inner.join(","))
}

impl TerminationReport {
    /// Serialize the report as a JSON object.
    ///
    /// Shape:
    /// ```json
    /// {
    ///   "query": "perm/2",
    ///   "verdict": "Terminates",
    ///   "sccs": [
    ///     {
    ///       "members": ["perm/2"],
    ///       "outcome": "proved",
    ///       "witness": {"perm/2": ["1/2"]},
    ///       "deltas": {"perm/2 -> perm/2": "1"},
    ///       "constraints": ["-2*theta[perm][1] + 1 <= 0", "..."]
    ///     }
    ///   ]
    /// }
    /// ```
    /// Rationals are emitted as strings (`"1/2"`) to stay exact.
    pub fn to_json(&self) -> String {
        self.to_json_with(false)
    }

    /// Like [`TerminationReport::to_json`]; with `stats` set, each SCC
    /// object additionally carries a `"stats"` member with its FM counters
    /// and the report a `"run_stats"` member with projection-cache totals.
    /// Only deterministic counters are emitted — wall-clock time stays in
    /// the text report — so the output is byte-stable across runs, `--jobs`
    /// settings, and cache hit/miss patterns.
    pub fn to_json_with(&self, stats: bool) -> String {
        let verdict = match self.verdict {
            Verdict::Terminates => "Terminates",
            Verdict::Unknown => "Unknown",
            Verdict::ZeroWeightCycle => "ZeroWeightCycle",
        };
        let sccs = json_array(self.sccs.iter().map(|scc| {
            let members = json_array(
                scc.members.iter().map(|p| json_str(&p.to_string())),
            );
            let constraints = json_array(
                scc.render_constraints().iter().map(|c| json_str(c)),
            );
            let (outcome, detail) = match &scc.outcome {
                SccOutcome::NonRecursive => ("nonrecursive".to_string(), String::new()),
                SccOutcome::Proved { witness, deltas } => {
                    let w: Vec<String> = witness
                        .iter()
                        .map(|(p, th)| {
                            format!(
                                "{}:{}",
                                json_str(&p.to_string()),
                                json_array(th.iter().map(|r| json_str(&r.to_string())))
                            )
                        })
                        .collect();
                    let d: Vec<String> = deltas
                        .iter()
                        .map(|((a, b), v)| {
                            format!(
                                "{}:{}",
                                json_str(&format!("{a} -> {b}")),
                                json_str(&v.to_string())
                            )
                        })
                        .collect();
                    (
                        "proved".to_string(),
                        format!(
                            ",\"witness\":{{{}}},\"deltas\":{{{}}}",
                            w.join(","),
                            d.join(",")
                        ),
                    )
                }
                SccOutcome::ProvedLexicographic { proof } => {
                    let levels = json_array(proof.levels.iter().map(|level| {
                        let entries: Vec<String> = level
                            .iter()
                            .map(|(p, th)| {
                                format!(
                                    "{}:{}",
                                    json_str(&p.to_string()),
                                    json_array(
                                        th.iter().map(|r| json_str(&r.to_string()))
                                    )
                                )
                            })
                            .collect();
                        format!("{{{}}}", entries.join(","))
                    }));
                    ("proved_lexicographic".to_string(), format!(",\"levels\":{levels}"))
                }
                SccOutcome::ZeroWeightCycle(cycle) => (
                    "zero_weight_cycle".to_string(),
                    format!(
                        ",\"cycle\":{}",
                        json_array(cycle.iter().map(|p| json_str(&p.to_string())))
                    ),
                ),
                SccOutcome::NoLinearDecrease { refutation } => {
                    let blame = match &scc.blame {
                        Some(b) => {
                            let span = match b.subgoal_span() {
                                Some(s) => format!(
                                    ",\"line\":{},\"col\":{},\"start\":{},\"end\":{}",
                                    s.line, s.col, s.start, s.end
                                ),
                                None => String::new(),
                            };
                            format!(
                                ",\"blame\":{{\"head\":{},\"call\":{},\"subgoal_index\":{},\"kind\":{}{span}}}",
                                json_str(&b.head_pred.to_string()),
                                json_str(&b.sub_pred.to_string()),
                                b.subgoal_index,
                                json_str(match b.kind {
                                    crate::analyze::BlameKind::Alone => "alone",
                                    crate::analyze::BlameKind::Conjunction => "conjunction",
                                })
                            )
                        }
                        None => String::new(),
                    };
                    (
                        "no_linear_decrease".to_string(),
                        format!(
                            ",\"has_refutation\":{}{blame}",
                            if refutation.is_some() { "true" } else { "false" }
                        ),
                    )
                }
            };
            let scc_stats = if stats {
                let fm = &scc.stats.fm;
                format!(
                    ",\"stats\":{{\"projections\":{},\"eliminations\":{},\"gauss_steps\":{},\
                     \"rows_in\":{},\"rows_out\":{},\"pairs_combined\":{},\"dedup_hits\":{},\
                     \"subsume_hits\":{},\"chernikov_drops\":{},\"lp_drops\":{},\"peak_rows\":{},\
                     \"small_combs\":{},\"big_combs\":{}}}",
                    scc.stats.projections,
                    fm.eliminations,
                    fm.gauss_steps,
                    fm.rows_in,
                    fm.rows_out,
                    fm.pairs_combined,
                    fm.dedup_hits,
                    fm.subsume_hits,
                    fm.chernikov_drops,
                    fm.lp_drops,
                    fm.peak_rows,
                    fm.small_combs,
                    fm.big_combs,
                )
            } else {
                String::new()
            };
            format!(
                "{{\"members\":{members},\"outcome\":{}{detail},\"constraints\":{constraints}{scc_stats}}}",
                json_str(&outcome)
            )
        }));
        let run_stats = if stats {
            let mut out = format!(
                ",\"run_stats\":{{\"cache_requests\":{},\"cache_entries\":{},\"cache_hits\":{}}}",
                self.run_stats.cache_requests,
                self.run_stats.cache_entries,
                self.run_stats.cache_hits(),
            );
            // Incremental memo counters are stats-only, like run_stats: the
            // default JSON must stay byte-identical with the memo on or off.
            if let Some(incr) = &self.incremental {
                out.push_str(&format!(
                    ",\"incremental\":{{\"size_hits\":{},\"size_misses\":{},\"theta_hits\":{},\"theta_misses\":{},\"dirty\":{},\"total\":{}}}",
                    incr.size_hits,
                    incr.size_misses,
                    incr.theta_hits,
                    incr.theta_misses,
                    incr.dirty(),
                    incr.total(),
                ));
            }
            out
        } else {
            String::new()
        };
        format!(
            "{{\"query\":{},\"verdict\":{},\"sccs\":{sccs}{run_stats}}}",
            json_str(&self.query.to_string()),
            json_str(verdict)
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze::analyze_source;

    #[test]
    fn proved_report_shape() {
        let report = analyze_source(
            "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            "append/3",
            "bff",
        )
        .unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"verdict\":\"Terminates\""), "{json}");
        assert!(json.contains("\"witness\""), "{json}");
        assert!(json.contains("\"1/2\""), "{json}");
    }

    #[test]
    fn failure_report_shape() {
        let report = analyze_source("p(X) :- p(X).", "p/1", "b").unwrap();
        let json = report.to_json();
        assert!(json.contains("\"verdict\":\"Unknown\""), "{json}");
        assert!(json.contains("no_linear_decrease"), "{json}");
        assert!(json.contains("\"has_refutation\""), "{json}");
    }

    #[test]
    fn zero_cycle_report_shape() {
        let report = analyze_source("p(X) :- q(X).\nq(X) :- p(X).", "p/1", "b").unwrap();
        let json = report.to_json();
        assert!(json.contains("zero_weight_cycle"), "{json}");
        assert!(json.contains("\"cycle\""), "{json}");
    }

    #[test]
    fn stats_report_carries_comb_counters() {
        let report = analyze_source(
            "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            "append/3",
            "bff",
        )
        .unwrap();
        let json = report.to_json_with(true);
        assert!(json.contains("\"small_combs\":"), "{json}");
        assert!(json.contains("\"big_combs\":"), "{json}");
        assert!(json.contains("\"run_stats\""), "{json}");
        // Plain reports must not grow the stats members.
        let plain = report.to_json();
        assert!(!plain.contains("small_combs"), "{plain}");
        assert!(!plain.contains("run_stats"), "{plain}");
    }

    #[test]
    fn escaping() {
        assert_eq!(super::esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::esc("\u{1}"), "\\u0001");
    }
}
