//! Greedy reproducer minimization.
//!
//! Given a program that fails some oracle (re-checked by a caller-supplied
//! predicate), repeatedly try structurally smaller candidates and keep any
//! that still fail, until a fixpoint or the evaluation budget runs out.
//! Passes, in order of coarseness:
//!
//! 1. drop whole rules;
//! 2. drop body literals;
//! 3. shrink argument terms (replace an argument by one of its immediate
//!    subterms, or by a small constant).
//!
//! The predicate must be deterministic — it re-derives the analysis and
//! queries from the case's fixed seed, so a kept candidate keeps failing
//! when replayed later.

use argus_logic::program::{Program, Rule};
use argus_logic::term::Term;

/// Shrink `program` while `fails` keeps returning true. `budget` caps the
/// number of candidate evaluations (each one re-runs the failing oracle).
pub fn shrink(
    program: &Program,
    fails: &mut dyn FnMut(&Program) -> bool,
    mut budget: usize,
) -> Program {
    let mut best = program.clone();
    loop {
        let mut improved = false;
        // Pass 1: drop rules.
        let mut i = 0;
        while i < best.rules.len() && best.rules.len() > 1 {
            if budget == 0 {
                return best;
            }
            let mut rules = best.rules.clone();
            rules.remove(i);
            let candidate = Program::from_rules(rules);
            budget -= 1;
            if fails(&candidate) {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
        // Pass 2: drop body literals.
        'rules: for ri in 0..best.rules.len() {
            let mut li = 0;
            while li < best.rules[ri].body.len() {
                if budget == 0 {
                    return best;
                }
                let mut rules = best.rules.clone();
                rules[ri].body.remove(li);
                let candidate = Program::from_rules(rules);
                budget -= 1;
                if fails(&candidate) {
                    best = candidate;
                    improved = true;
                    continue 'rules;
                }
                li += 1;
            }
        }
        // Pass 3: shrink argument terms.
        for ri in 0..best.rules.len() {
            for (ai, shrunk_arg) in arg_shrinks(&best.rules[ri]) {
                if budget == 0 {
                    return best;
                }
                let mut rules = best.rules.clone();
                apply_arg(&mut rules[ri], ai, shrunk_arg);
                let candidate = Program::from_rules(rules);
                budget -= 1;
                if fails(&candidate) {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Flat addressing of a rule's argument slots: head args first, then each
/// body literal's args in order.
fn apply_arg(rule: &mut Rule, mut index: usize, term: Term) {
    if index < rule.head.args.len() {
        rule.head.args[index] = term;
        return;
    }
    index -= rule.head.args.len();
    for lit in &mut rule.body {
        if index < lit.atom.args.len() {
            lit.atom.args[index] = term;
            return;
        }
        index -= lit.atom.args.len();
    }
}

/// Candidate single-argument replacements, smallest-first per slot.
fn arg_shrinks(rule: &Rule) -> Vec<(usize, Term)> {
    let mut out = Vec::new();
    let mut index = 0;
    let visit = |args: &[Term], out: &mut Vec<(usize, Term)>, index: &mut usize| {
        for a in args {
            if let Term::App(_, sub) = a {
                if !sub.is_empty() {
                    // Constants first (most aggressive), then subterms.
                    out.push((*index, Term::nil()));
                    out.push((*index, Term::atom("z")));
                    for s in sub {
                        out.push((*index, s.clone()));
                    }
                }
            }
            *index += 1;
        }
    };
    visit(&rule.head.args, &mut out, &mut index);
    for lit in &rule.body {
        visit(&lit.atom.args, &mut out, &mut index);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::parser::parse_program;

    #[test]
    fn shrinks_to_single_failing_rule() {
        let p =
            parse_program("p([X|Xs]) :- p(Xs).\np([]).\nq(a).\nr(b) :- q(a).\nloop(X) :- loop(X).")
                .unwrap();
        // "Failure" = program still contains a rule whose head is loop/1.
        let mut fails = |c: &Program| c.rules.iter().any(|r| r.head.name.as_ref() == "loop");
        let small = shrink(&p, &mut fails, 1_000);
        assert_eq!(small.rules.len(), 1);
        assert_eq!(small.rules[0].head.name.as_ref(), "loop");
    }

    #[test]
    fn shrinks_terms() {
        let p = parse_program("p([a, b, c, d]).").unwrap();
        // "Failure" = p's argument is a nonempty list.
        let mut fails = |c: &Program| {
            c.rules.iter().any(|r| {
                r.head.args.first().map(|t| t.ground_size().unwrap_or(0) > 0) == Some(true)
            })
        };
        let small = shrink(&p, &mut fails, 1_000);
        let size = small.rules[0].head.args[0].ground_size().unwrap();
        assert!(size <= 2, "got {}", small.rules[0]);
    }

    #[test]
    fn respects_budget() {
        let p = parse_program("p(a).\np(b).\np(c).\np(d).").unwrap();
        let mut calls = 0usize;
        let mut fails = |_: &Program| {
            calls += 1;
            false
        };
        let _ = shrink(&p, &mut fails, 3);
        assert!(calls <= 3);
    }
}
