//! E3 — Example 6.1: the arithmetic-expression parser.
//!
//! Reproduces: the imported constraints `x1 ≥ 2 + x2` for e/t/n, the δ
//! pattern (δ_et = δ_tn = 0 forced, δ_ne = 1, self-loops 1), the absence
//! of zero-weight cycles, and the witness α = β = γ ≥ 1/2 — with both
//! mutual AND nonlinear recursion in play.

use argus_bench::ExperimentLog;
use argus_core::{analyze, AnalysisOptions, SccOutcome, Verdict};
use argus_logic::PredKey;
use argus_sizerel::{infer_size_relations, InferOptions};

fn main() {
    let entry = argus_corpus::find("expr_parser").expect("corpus");
    let program = entry.program().expect("parse");
    let (query, adornment) = entry.query_key();

    let mut log = ExperimentLog::new(
        "E3",
        "expression parser e/t/n (mutual + nonlinear recursion)",
        "Example 6.1",
        &["quantity", "paper", "measured"],
    );

    let rels = infer_size_relations(&program, &InferOptions::default());
    for name in ["e", "t", "n"] {
        let p = PredKey::new(name, 2);
        log.row(&[
            format!("imported constraint for {name}"),
            format!("{name}1 ≥ 2 + {name}2"),
            if rels.entails_gap(&p, 0, 1, 2) { "entailed".into() } else { "MISSING".into() },
        ]);
    }

    let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
    log.row(&["verdict".into(), "terminates".into(), format!("{:?}", report.verdict)]);
    if let Some(scc) = report.scc_of(&query) {
        log.row(&[
            "SCC".into(),
            "{e, t, n}".into(),
            format!(
                "{{{}}}",
                scc.members.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
            ),
        ]);
        if let SccOutcome::Proved { witness, deltas } = &scc.outcome {
            let expected = [
                ("e", "t", "0"),
                ("t", "n", "0"),
                ("n", "e", "1"),
                ("e", "e", "1"),
                ("t", "t", "1"),
            ];
            for (h, s, want) in expected {
                let got = deltas
                    .get(&(PredKey::new(h, 2), PredKey::new(s, 2)))
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into());
                log.row(&[format!("delta[{h} -> {s}]"), want.into(), got]);
            }
            for name in ["e", "t", "n"] {
                let w = &witness[&PredKey::new(name, 2)];
                log.row(&[
                    format!("witness theta[{name}]"),
                    "≥ 1/2".into(),
                    w.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", "),
                ]);
            }
        }
    }
    log.note(
        "Plümer eliminated the mutual recursion by an ad hoc encoding; this \
         method handles the three-predicate SCC directly (paper §6).",
    );
    assert_eq!(report.verdict, Verdict::Terminates, "E3 regression");
    log.emit();
}
