//! E8 — zero-weight-cycle detection (§6.1 step 3).
//!
//! Reproduces: "A zero-weight cycle is strong evidence of nontermination,
//! and the algorithm reports it if found and halts." We exercise loop-shaped
//! SCCs of increasing cycle length and check the cycle is reported, plus the
//! contrast case (the Example 6.1 parser) where zero-delta edges exist but
//! every cycle still has positive weight.

use argus_bench::ExperimentLog;
use argus_core::{analyze, AnalysisOptions, SccOutcome, Verdict};
use argus_logic::parser::parse_program;
use argus_logic::{Adornment, PredKey};

/// A pure k-cycle: p0 -> p1 -> … -> p0, no size change.
fn cycle_program(k: usize) -> String {
    let mut out = String::new();
    for i in 0..k {
        out.push_str(&format!("p{i}(X) :- p{}(X).\n", (i + 1) % k));
    }
    out
}

fn main() {
    let mut log = ExperimentLog::new(
        "E8",
        "zero-weight-cycle reporting for size-preserving loops",
        "§6.1 step 3",
        &["program", "expected", "verdict", "reported cycle"],
    );

    for k in [1usize, 2, 3, 5, 8] {
        let src = cycle_program(k);
        let program = parse_program(&src).expect("parse");
        let report = analyze(
            &program,
            &PredKey::new("p0", 1),
            Adornment::parse("b").unwrap(),
            &AnalysisOptions::default(),
        );
        let cycle = report
            .sccs
            .iter()
            .find_map(|s| match &s.outcome {
                SccOutcome::ZeroWeightCycle(c) => {
                    Some(c.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" -> "))
                }
                _ => None,
            })
            .unwrap_or_else(|| "-".into());
        let expected = if k == 1 {
            // A self-loop keeps delta = 1 (i = j), so it fails by
            // infeasibility rather than by the cycle check.
            "NoLinearDecrease"
        } else {
            "ZeroWeightCycle"
        };
        log.row(&[format!("{k}-cycle"), expected.into(), format!("{:?}", report.verdict), cycle]);
        assert_ne!(report.verdict, Verdict::Terminates, "E8 soundness k={k}");
        if k >= 2 {
            assert_eq!(report.verdict, Verdict::ZeroWeightCycle, "E8 k={k}");
        }
    }

    // Contrast: the parser has zero-delta edges but no zero-weight cycle.
    let parser = argus_corpus::find("expr_parser").unwrap();
    let program = parser.program().unwrap();
    let (query, adornment) = parser.query_key();
    let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
    log.row(&[
        "expr_parser (δ_et = δ_tn = 0)".into(),
        "Terminates (cycle e→t→n→e weighs 1)".into(),
        format!("{:?}", report.verdict),
        "-".into(),
    ]);
    assert_eq!(report.verdict, Verdict::Terminates, "E8 parser contrast");

    log.note(
        "Zero-delta edges are fine as long as the min-plus closure finds no \
         zero-weight cycle; a genuinely size-preserving loop is reported with \
         the offending predicate cycle.",
    );
    log.emit();
}
