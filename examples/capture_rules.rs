//! Capture rules: choosing top-down vs bottom-up evaluation.
//!
//! ```sh
//! cargo run --example capture_rules
//! ```
//!
//! The paper's motivation (§1, after Ullman): a *top-down capture rule*
//! may evaluate a predicate with Prolog-style resolution only when
//! termination is guaranteed. This example plays the deductive-database
//! planner: for each of two rule sets it asks the analyzer whether the
//! query mode provably terminates top-down, picks a strategy accordingly,
//! and then actually runs both evaluators to show the choice was right.

use argus::interp::bottomup::{saturate, BottomUpOptions};
use argus::interp::sld::{solve, InterpOptions};
use argus::logic::parser::{parse_program, parse_query};
use argus::prelude::*;

fn plan(name: &str, source: &str, query_spec: &str, adornment: &str, query: &str) {
    println!("=== {name} ===");
    let program = parse_program(source).expect("parse");
    let report = analyze_source(source, query_spec, adornment).expect("analyze");
    println!("analyzer verdict for {query_spec} ({adornment}): {:?}", report.verdict);

    let goals = parse_query(query).expect("query");
    match report.verdict {
        Verdict::Terminates => {
            println!("capture rule: top-down evaluation is safe — running SLD");
            let out = solve(&program, &goals, &InterpOptions::default());
            println!(
                "  SLD: {} solution(s) in {} steps, search tree exhausted: {}",
                out.solution_count(),
                out.steps(),
                out.terminated()
            );
        }
        _ => {
            println!("capture rule: no top-down guarantee — evaluating bottom-up");
            match saturate(&program, &BottomUpOptions::default()) {
                argus::interp::Saturation::Fixpoint { facts, iterations } => {
                    println!(
                        "  bottom-up: fixpoint with {} facts after {} iteration(s)",
                        facts.len(),
                        iterations
                    );
                    // Answer the query against the saturated facts.
                    let matches = facts
                        .iter()
                        .filter(|f| {
                            let mut s = argus::logic::Subst::new();
                            argus::logic::unify_atoms(&mut s, &goals[0].atom, f, false)
                        })
                        .count();
                    println!("  query {query}: {matches} answer(s) from the fixpoint");
                }
                argus::interp::Saturation::Diverged { fact_count } => {
                    println!("  bottom-up diverged too ({fact_count} facts) — no strategy fits");
                }
            }
        }
    }
    println!();
}

fn main() {
    // Recursion on structure: terminates top-down (bound input list),
    // diverges bottom-up (keeps building bigger lists).
    plan(
        "naive reverse (recursion on structure)",
        "app([], Ys, Ys).\n\
         app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n\
         nrev([], []).\n\
         nrev([X|Xs], R) :- nrev(Xs, R1), app(R1, [X], R).",
        "nrev/2",
        "bf",
        "nrev([a, b, c, d, e], R)",
    );

    // Datalog-style reachability over a CYCLIC graph: Prolog loops on it,
    // bottom-up saturates in a few iterations.
    plan(
        "transitive closure over a cyclic graph",
        "edge(a, b).\nedge(b, c).\nedge(c, a).\n\
         tc(X, Y) :- edge(X, Y).\n\
         tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        "tc/2",
        "bf",
        "tc(a, Y)",
    );
}
