//! # argus — termination detection in logic programs using argument sizes
//!
//! A complete Rust implementation of **Kirack Sohn & Allen Van Gelder,
//! “Termination Detection in Logic Programs using Argument Sizes”
//! (PODS 1991)**, together with every substrate the method depends on and
//! the baselines it is compared against.
//!
//! The method proves that top-down (Prolog-style) evaluation of a logic
//! procedure terminates by finding, per predicate, a nonnegative linear
//! combination of *bound-argument sizes* that strictly decreases on every
//! recursive call. The search for the combination is reduced — via LP
//! duality and Fourier–Motzkin elimination — to a linear feasibility
//! problem solved exactly.
//!
//! ## Quick start
//!
//! ```
//! use argus::prelude::*;
//!
//! let report = analyze_source(
//!     "append([], Ys, Ys).\n\
//!      append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
//!     "append/3",
//!     "bff", // first argument bound, others free
//! ).unwrap();
//! assert_eq!(report.verdict, Verdict::Terminates);
//! println!("{report}");
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`linear`] | `argus-linear` | big integers, exact rationals, Fourier–Motzkin, simplex, polyhedra |
//! | [`logic`] | `argus-logic` | terms, rules, parser, unification, SCCs, modes, adornment |
//! | [`sizerel`] | `argus-sizerel` | inter-argument size-relation inference (\[VG90\]) |
//! | [`transform`] | `argus-transform` | equality elimination, predicate splitting, safe unfolding (App. A) |
//! | [`core`] | `argus-core` | the termination analysis itself (§3–§6, App. C/D), engine trait + racing portfolio |
//! | [`sct`] | `argus-sct` | size-change termination engine (LJB 2001) over the same size relations |
//! | [`diag`] | `argus-diag` | span-aware lint passes and diagnostic renderers (`argus lint`) |
//! | [`baselines`] | `argus-baselines` | Naish/SU, UVG88, Brodsky–Sagiv-style comparators |
//! | [`interp`] | `argus-interp` | SLD interpreter + bottom-up evaluator (validation) |
//! | [`corpus`] | `argus-corpus` | the benchmark corpus with ground-truth labels |
//! | [`planner`] | (this crate) | capture-rule query planning: top-down when proved, bottom-up otherwise |

#![warn(missing_docs)]

pub mod planner;

pub use argus_baselines as baselines;
pub use argus_core as core;
pub use argus_corpus as corpus;
pub use argus_diag as diag;
pub use argus_fuzz as fuzz;
pub use argus_interp as interp;
pub use argus_linear as linear;
pub use argus_logic as logic;
pub use argus_lsp as lsp;
pub use argus_sct as sct;
pub use argus_serve as serve;
pub use argus_sizerel as sizerel;
pub use argus_transform as transform;

/// The things almost every user needs.
pub mod prelude {
    pub use argus_core::{
        analyze, analyze_source, infer_conditions, infer_conditions_for, AnalysisOptions,
        BackwardsOptions, DeltaMode, FmTier, InferenceReport, SccOutcome, TerminationCondition,
        TerminationReport, Verdict,
    };
    pub use argus_diag::{lint_program, lint_source, Diagnostic, LintOptions, Severity};
    pub use argus_logic::{parser::parse_program, Adornment, PredKey, Program};
    pub use argus_sizerel::{infer_size_relations, InferOptions, SizeRelations};
}
