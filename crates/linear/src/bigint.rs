//! Arbitrary-precision signed integers with an inline small-integer fast
//! path.
//!
//! Fourier–Motzkin elimination and exact simplex pivoting multiply
//! coefficients pairwise, so intermediate values can overflow any fixed-width
//! integer even when the input program is tiny. All arithmetic in this crate
//! is therefore exact and unbounded.
//!
//! The representation is two-tier: values that fit an `i64` are stored
//! inline ([`Repr::Small`], no heap allocation), everything else falls back
//! to sign-magnitude with a little-endian `Vec<u64>` of limbs and no
//! trailing zero limbs ([`Repr::Large`]). The overwhelming majority of
//! coefficients the termination analysis manipulates are tiny (weights of 0
//! and 1, small δ decrements), so the inline tier makes the hot paths
//! allocation-free: add/sub/mul/cmp/gcd run on machine words via
//! `checked_*` ops and promote to limbs only on actual overflow.
//!
//! **Canonical-form invariant**: any value that fits an `i64` is *always*
//! `Small` — every constructor demotes. Equality and hashing therefore stay
//! derived/structural: two `BigInt`s are numerically equal iff their
//! representations are identical.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`]. `Zero` is used exactly when the magnitude is empty,
/// which keeps equality and hashing structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// The opposite sign; `Zero` is its own opposite.
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Product-of-signs rule.
    #[allow(clippy::should_implement_trait)] // deliberate: Sign is Copy and
                                             // this is the sign-algebra product, not numeric multiplication
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// The two storage tiers. Kept private so every construction site goes
/// through a canonicalizing constructor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Inline value; used for every integer in `[i64::MIN, i64::MAX]`.
    Small(i64),
    /// Sign-magnitude limbs for everything else. Invariants: the sign is
    /// never `Zero`, there are no trailing zero limbs, and the magnitude
    /// does **not** fit an `i64` (so `Small` and `Large` never overlap).
    Large(Sign, Vec<u64>),
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use argus_linear::BigInt;
/// let a = BigInt::from(1_000_000_007i64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// assert_eq!((&b % &a), BigInt::zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt(Repr);

#[cfg(test)]
thread_local! {
    /// Unit-test instrumentation: counts calls to [`BigInt::gcd`] so the
    /// `Rat` shortcut tests can pin "no renormalization happened".
    pub(crate) static GCD_CALLS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Binary GCD on machine words — the workhorse of `Rat` normalization once
/// values are inline.
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

impl BigInt {
    /// Inline constructor (always canonical: every `i64` is `Small`).
    #[inline]
    fn small(v: i64) -> BigInt {
        BigInt(Repr::Small(v))
    }

    /// The integer 0.
    #[inline]
    pub fn zero() -> BigInt {
        BigInt::small(0)
    }

    /// The integer 1.
    #[inline]
    pub fn one() -> BigInt {
        BigInt::small(1)
    }

    /// The integer -1.
    #[inline]
    pub fn neg_one() -> BigInt {
        BigInt::small(-1)
    }

    /// True iff this is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// True iff this is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        matches!(self.0, Repr::Small(1))
    }

    /// True iff strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => *v < 0,
            Repr::Large(s, _) => *s == Sign::Negative,
        }
    }

    /// True iff strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => *v > 0,
            Repr::Large(s, _) => *s == Sign::Positive,
        }
    }

    /// The sign of this integer.
    #[inline]
    pub fn sign(&self) -> Sign {
        match &self.0 {
            Repr::Small(v) => match v.cmp(&0) {
                Ordering::Less => Sign::Negative,
                Ordering::Equal => Sign::Zero,
                Ordering::Greater => Sign::Positive,
            },
            Repr::Large(s, _) => *s,
        }
    }

    /// The inline value, if this integer fits an `i64`. By the canonical
    /// invariant this is `Some` exactly when the value is in range.
    #[inline]
    pub fn to_i64(&self) -> Option<i64> {
        match &self.0 {
            Repr::Small(v) => Some(*v),
            Repr::Large(..) => None,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        match &self.0 {
            Repr::Small(v) => match v.checked_abs() {
                Some(a) => BigInt::small(a),
                // |i64::MIN| = 2^63 does not fit an i64.
                None => BigInt(Repr::Large(Sign::Positive, vec![1u64 << 63])),
            },
            Repr::Large(_, limbs) => BigInt(Repr::Large(Sign::Positive, limbs.clone())),
        }
    }

    /// Construct from sign and magnitude, normalizing trailing zeros and
    /// demoting to the inline tier when the value fits an `i64`.
    fn from_sign_limbs(sign: Sign, mut limbs: Vec<u64>) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => BigInt::zero(),
            1 => {
                debug_assert_ne!(sign, Sign::Zero);
                let m = limbs[0];
                match sign {
                    Sign::Negative if m <= 1u64 << 63 => {
                        BigInt::small((m as i128).wrapping_neg() as i64)
                    }
                    Sign::Positive if m <= i64::MAX as u64 => BigInt::small(m as i64),
                    _ => BigInt(Repr::Large(sign, limbs)),
                }
            }
            _ => {
                debug_assert_ne!(sign, Sign::Zero);
                BigInt(Repr::Large(sign, limbs))
            }
        }
    }

    /// View as (sign, magnitude limbs), materializing an inline value into
    /// the caller-provided one-limb buffer. This is how the limb algorithms
    /// consume mixed small/large operands without allocating.
    #[inline]
    fn parts<'a>(&'a self, buf: &'a mut [u64; 1]) -> (Sign, &'a [u64]) {
        match &self.0 {
            Repr::Small(0) => (Sign::Zero, &buf[..0]),
            Repr::Small(v) => {
                buf[0] = v.unsigned_abs();
                (if *v > 0 { Sign::Positive } else { Sign::Negative }, &buf[..1])
            }
            Repr::Large(s, limbs) => (*s, limbs.as_slice()),
        }
    }

    /// Magnitude as a `u64` when it fits in one limb (used to drop into the
    /// word-sized GCD mid-loop).
    #[inline]
    fn mag_u64(&self) -> Option<u64> {
        match &self.0 {
            Repr::Small(v) => Some(v.unsigned_abs()),
            Repr::Large(_, limbs) if limbs.len() == 1 => Some(limbs[0]),
            Repr::Large(..) => None,
        }
    }

    /// Compare magnitudes only.
    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Magnitude addition.
    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i] as u128;
            let y = if i < short.len() { short[i] as u128 } else { 0 };
            let s = x + y + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Magnitude subtraction; requires `a >= b`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i128;
        for i in 0..a.len() {
            let x = a[i] as i128;
            let y = if i < b.len() { b[i] as i128 } else { 0 };
            let mut d = x - y - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Magnitude multiplication (schoolbook). Inputs here are small in
    /// practice (a few limbs), so asymptotically faster algorithms would not
    /// pay for their complexity.
    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Magnitude division: returns (quotient, remainder). Knuth's Algorithm D
    /// with 64-bit limbs. `b` must be nonzero.
    fn divmod_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            // Short division.
            let d = b[0] as u128;
            let mut q = vec![0u64; a.len()];
            let mut rem = 0u128;
            for i in (0..a.len()).rev() {
                let cur = (rem << 64) | a[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 { Vec::new() } else { vec![rem as u64] };
            return (q, r);
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = b.last().unwrap().leading_zeros();
        let bn = Self::shl_bits(b, shift);
        let mut an = Self::shl_bits(a, shift);
        an.push(0); // extra headroom limb
        let n = bn.len();
        let m = an.len() - n - 1;
        let mut q = vec![0u64; m + 1];
        let btop = bn[n - 1] as u128;
        let bsec = bn[n - 2] as u128;

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let top = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
            let mut qhat = top / btop;
            let mut rhat = top % btop;
            while qhat >= 1u128 << 64 || qhat * bsec > ((rhat << 64) | an[j + n - 2] as u128) {
                qhat -= 1;
                rhat += btop;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * bn from an[j..j+n+1].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * bn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (p as u64) as i128;
                let mut d = an[j + i] as i128 - sub - borrow;
                if d < 0 {
                    d += 1i128 << 64;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                an[j + i] = d as u64;
            }
            let mut d = an[j + n] as i128 - carry as i128 - borrow;
            if d < 0 {
                // q̂ was one too large: add back.
                d += 1i128 << 64;
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = an[j + i] as u128 + bn[i] as u128 + c;
                    an[j + i] = s as u64;
                    c = s >> 64;
                }
                d += c as i128;
                d &= (1i128 << 64) - 1;
            }
            an[j + n] = d as u64;
            q[j] = qhat as u64;
        }

        while q.last() == Some(&0) {
            q.pop();
        }
        an.truncate(n);
        let r = Self::shr_bits(&an, shift);
        (q, r)
    }

    /// Left shift a magnitude by `bits` (< 64).
    fn shl_bits(a: &[u64], bits: u32) -> Vec<u64> {
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for &x in a {
            out.push((x << bits) | carry);
            carry = x >> (64 - bits);
        }
        if carry != 0 {
            out.push(carry);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Right shift a magnitude by `bits` (< 64).
    fn shr_bits(a: &[u64], bits: u32) -> Vec<u64> {
        if bits == 0 {
            let mut v = a.to_vec();
            while v.last() == Some(&0) {
                v.pop();
            }
            return v;
        }
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let lo = a[i] >> bits;
            let hi = if i + 1 < a.len() { a[i + 1] << (64 - bits) } else { 0 };
            out.push(lo | hi);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Truncated division with remainder: `self = q * other + r` with
    /// `|r| < |other|` and `r` having the sign of `self` (or zero).
    pub fn divmod(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            // i64::MIN / -1 is the one overflowing case; i128 covers it.
            let q = *a as i128 / *b as i128;
            let r = *a as i128 % *b as i128;
            return (BigInt::from(q), BigInt::from(r));
        }
        let (mut ba, mut bb) = ([0u64; 1], [0u64; 1]);
        let (sa, la) = self.parts(&mut ba);
        let (sb, lb) = other.parts(&mut bb);
        let (qm, rm) = Self::divmod_mag(la, lb);
        let q = BigInt::from_sign_limbs(sa.mul(sb), qm);
        let r = BigInt::from_sign_limbs(sa, rm);
        (q, r)
    }

    /// Greatest common divisor; always nonnegative. `gcd(0, 0) = 0`.
    ///
    /// Inline operands use binary GCD on machine words; multi-limb operands
    /// run Euclid until both sides shrink to a word, then finish there.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        #[cfg(test)]
        GCD_CALLS.with(|c| c.set(c.get() + 1));
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return BigInt::from(gcd_u64(a.unsigned_abs(), b.unsigned_abs()));
        }
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            if let (Some(x), Some(y)) = (a.mag_u64(), b.mag_u64()) {
                return BigInt::from(gcd_u64(x, y));
            }
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple; always nonnegative. `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        (&(self / &g) * other).abs()
    }

    /// Raise to a nonnegative power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Convert to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.0 {
            Repr::Small(v) => Some(*v as i128),
            Repr::Large(sign, limbs) => match limbs.len() {
                1 => {
                    let v = limbs[0] as i128;
                    Some(if *sign == Sign::Negative { -v } else { v })
                }
                2 => {
                    let mag = ((limbs[1] as u128) << 64) | limbs[0] as u128;
                    match sign {
                        Sign::Negative => {
                            if mag <= 1u128 << 127 {
                                Some((mag as i128).wrapping_neg())
                            } else {
                                None
                            }
                        }
                        _ => {
                            if mag < 1u128 << 127 {
                                Some(mag as i128)
                            } else {
                                None
                            }
                        }
                    }
                }
                _ => None,
            },
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match &self.0 {
            Repr::Small(0) => 0,
            Repr::Small(v) => 64 - v.unsigned_abs().leading_zeros() as u64,
            Repr::Large(_, limbs) => {
                let top = limbs.last().expect("Large is never empty");
                (limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64)
            }
        }
    }

    /// Shared slow path for add/sub once at least one side is multi-limb.
    fn addsub_slow(&self, other: &BigInt, negate_other: bool) -> BigInt {
        let (mut ba, mut bb) = ([0u64; 1], [0u64; 1]);
        let (sa, la) = self.parts(&mut ba);
        let (sb_raw, lb) = other.parts(&mut bb);
        let sb = if negate_other { sb_raw.negate() } else { sb_raw };
        match (sa, sb) {
            (Sign::Zero, _) => BigInt::from_sign_limbs(sb, lb.to_vec()),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_limbs(a, BigInt::add_mag(la, lb)),
            _ => match BigInt::cmp_mag(la, lb) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_limbs(sa, BigInt::sub_mag(la, lb)),
                Ordering::Less => BigInt::from_sign_limbs(sb, BigInt::sub_mag(lb, la)),
            },
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    #[inline]
    fn from(v: i64) -> BigInt {
        BigInt::small(v)
    }
}

impl From<i32> for BigInt {
    #[inline]
    fn from(v: i32) -> BigInt {
        BigInt::small(v as i64)
    }
}

impl From<u64> for BigInt {
    #[inline]
    fn from(v: u64) -> BigInt {
        if v <= i64::MAX as u64 {
            BigInt::small(v as i64)
        } else {
            BigInt(Repr::Large(Sign::Positive, vec![v]))
        }
    }
}

impl From<usize> for BigInt {
    #[inline]
    fn from(v: usize) -> BigInt {
        BigInt::from(v as u64)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        if let Ok(small) = i64::try_from(v) {
            return BigInt::small(small);
        }
        let (sign, m) =
            if v > 0 { (Sign::Positive, v as u128) } else { (Sign::Negative, v.unsigned_abs()) };
        BigInt::from_sign_limbs(sign, vec![m as u64, (m >> 64) as u64])
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            _ => {
                let (sa, sb) = (self.sign(), other.sign());
                match sa.cmp(&sb) {
                    Ordering::Equal => {
                        let (mut ba, mut bb) = ([0u64; 1], [0u64; 1]);
                        let (_, la) = self.parts(&mut ba);
                        let (_, lb) = other.parts(&mut bb);
                        match sa {
                            Sign::Zero => Ordering::Equal,
                            Sign::Positive => Self::cmp_mag(la, lb),
                            Sign::Negative => Self::cmp_mag(lb, la),
                        }
                    }
                    other => other,
                }
            }
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match &self.0 {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt::small(n),
                None => BigInt(Repr::Large(Sign::Positive, vec![1u64 << 63])),
            },
            // Negation can demote: -(Large(+, [2^63])) is i64::MIN.
            Repr::Large(s, limbs) => BigInt::from_sign_limbs(s.negate(), limbs.clone()),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match self.0 {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt::small(n),
                None => BigInt(Repr::Large(Sign::Positive, vec![1u64 << 63])),
            },
            Repr::Large(s, limbs) => BigInt::from_sign_limbs(s.negate(), limbs),
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    #[inline]
    fn add(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_add(*b) {
                Some(s) => BigInt::small(s),
                None => BigInt::from(*a as i128 + *b as i128),
            };
        }
        self.addsub_slow(other, false)
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    #[inline]
    fn sub(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_sub(*b) {
                Some(s) => BigInt::small(s),
                None => BigInt::from(*a as i128 - *b as i128),
            };
        }
        self.addsub_slow(other, true)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    #[inline]
    fn mul(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_mul(*b) {
                Some(p) => BigInt::small(p),
                None => BigInt::from(*a as i128 * *b as i128),
            };
        }
        let (mut ba, mut bb) = ([0u64; 1], [0u64; 1]);
        let (sa, la) = self.parts(&mut ba);
        let (sb, lb) = other.parts(&mut bb);
        BigInt::from_sign_limbs(sa.mul(sb), BigInt::mul_mag(la, lb))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.divmod(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.divmod(other).1
    }
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                (&self).$method(other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                self.$method(&other)
            }
        }
    };
}

forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);
forward_binop_owned!(Div, div);
forward_binop_owned!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    #[inline]
    fn add_assign(&mut self, other: &BigInt) {
        // In-place on the inline tier: no allocation, no copy-out.
        if let (Repr::Small(a), Repr::Small(b)) = (&mut self.0, &other.0) {
            if let Some(s) = a.checked_add(*b) {
                *a = s;
                return;
            }
        }
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    #[inline]
    fn sub_assign(&mut self, other: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&mut self.0, &other.0) {
            if let Some(s) = a.checked_sub(*b) {
                *a = s;
                return;
            }
        }
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    #[inline]
    fn mul_assign(&mut self, other: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&mut self.0, &other.0) {
            if let Some(p) = a.checked_mul(*b) {
                *a = p;
                return;
            }
        }
        *self = &*self * other;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (sign, limbs) = match &self.0 {
            Repr::Small(v) => return write!(f, "{v}"),
            Repr::Large(s, l) => (*s, l),
        };
        if sign == Sign::Negative {
            write!(f, "-")?;
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = limbs.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let mut rem = 0u128;
            for i in (0..mag.len()).rev() {
                let cur = (rem << 64) | mag[i] as u128;
                mag[i] = (cur / CHUNK as u128) as u64;
                rem = cur % CHUNK as u128;
            }
            while mag.last() == Some(&0) {
                mag.pop();
            }
            chunks.push(rem as u64);
        }
        let mut iter = chunks.iter().rev();
        if let Some(first) = iter.next() {
            write!(f, "{first}")?;
        }
        for c in iter {
            write!(f, "{c:019}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`BigInt`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.message)
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Fast path: anything that fits an i64 (accepts the same `-`/`+`
        // prefixes and pure-digit bodies as the slow loop below).
        if let Ok(v) = s.parse::<i64>() {
            return Ok(BigInt::small(v));
        }
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError { message: "empty".into() });
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10u64);
        for ch in digits.chars() {
            let d = ch
                .to_digit(10)
                .ok_or_else(|| ParseBigIntError { message: format!("bad digit {ch:?}") })?;
            acc = &(&acc * &ten) + &BigInt::from(d as u64);
        }
        if sign == Sign::Negative {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_is_normalized() {
        assert!(b(0).is_zero());
        assert_eq!(b(0), BigInt::zero());
        assert_eq!(b(5) - b(5), BigInt::zero());
        assert_eq!((b(5) - b(5)).sign(), Sign::Zero);
    }

    #[test]
    fn small_arithmetic_matches_i128() {
        let cases = [
            (0i128, 0i128),
            (1, 1),
            (-1, 1),
            (123, -456),
            (i64::MAX as i128, i64::MAX as i128),
            (i64::MIN as i128, 3),
            (1 << 70, -(1 << 65)),
        ];
        for &(x, y) in &cases {
            assert_eq!((b(x) + b(y)).to_i128(), Some(x + y), "{x}+{y}");
            assert_eq!((b(x) - b(y)).to_i128(), Some(x - y), "{x}-{y}");
            if x.checked_mul(y).is_some() {
                assert_eq!((b(x) * b(y)).to_i128(), Some(x * y), "{x}*{y}");
            }
            if y != 0 {
                assert_eq!((b(x) / b(y)).to_i128(), Some(x / y), "{x}/{y}");
                assert_eq!((b(x) % b(y)).to_i128(), Some(x % y), "{x}%{y}");
            }
        }
    }

    #[test]
    fn canonical_form_demotes_everywhere() {
        // Every route back under the i64 line must land in the inline tier,
        // or derived equality would be wrong.
        let max = b(i64::MAX as i128);
        let one = BigInt::one();
        let promoted = &max + &one; // 2^63: Large
        assert_eq!(promoted.to_i64(), None);
        let demoted = &promoted - &one; // back to i64::MAX: must be Small
        assert_eq!(demoted.to_i64(), Some(i64::MAX));
        assert_eq!(demoted, max);

        // Negation boundary: -(2^63) is i64::MIN and must demote.
        let min = -&promoted;
        assert_eq!(min.to_i64(), Some(i64::MIN));
        assert_eq!(min, b(i64::MIN as i128));
        // ... and back up.
        assert_eq!((-&min).to_i64(), None);
        assert_eq!(-&(-&min), min);

        // Division collapsing multi-limb to small.
        let huge = b(1 << 100);
        let q = &huge / &b(1 << 90);
        assert_eq!(q.to_i64(), Some(1024));
    }

    #[test]
    fn in_place_ops_match_binops() {
        let mut x = b(i64::MAX as i128 - 1);
        x += &BigInt::one();
        assert_eq!(x.to_i64(), Some(i64::MAX));
        x += &BigInt::one(); // overflows the inline tier
        assert_eq!(x.to_i128(), Some(i64::MAX as i128 + 1));
        x -= &BigInt::from(2i64); // demotes again
        assert_eq!(x.to_i64(), Some(i64::MAX - 1));
        let mut y = b(1 << 40);
        y *= &b(1 << 40); // overflow promotes
        assert_eq!(y.to_i128(), Some(1 << 80));
    }

    #[test]
    fn gcd_u64_agrees_with_euclid() {
        fn euclid(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            a
        }
        let cases = [(0, 0), (0, 7), (7, 0), (12, 18), (1, 1), (u64::MAX, 2), (1 << 63, 3 << 20)];
        for (a, b) in cases {
            assert_eq!(gcd_u64(a, b), euclid(a, b), "gcd({a}, {b})");
        }
    }

    #[test]
    fn multi_limb_mul_div_roundtrip() {
        let big: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
        let d: BigInt = "98765432109876543210".parse().unwrap();
        let (q, r) = big.divmod(&d);
        assert_eq!(&(&q * &d) + &r, big);
        assert!(r.abs() < d.abs());
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
            "99999999999999999999999999999999",
            "9223372036854775807",
            "-9223372036854775808",
            "9223372036854775808",
            "-9223372036854775809",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(0)), b(0));
        assert_eq!(b(0).gcd(&b(7)), b(7));
        assert_eq!(b(4).lcm(&b(6)), b(12));
        assert_eq!(b(0).lcm(&b(6)), b(0));
        // Multi-limb operands shrink into the word-sized loop.
        let big = b((1 << 100) + 4);
        assert_eq!(big.gcd(&b(1 << 30)), b(4));
        // gcd(i64::MIN, i64::MIN) = 2^63 does not fit an i64.
        let g = b(i64::MIN as i128).gcd(&b(i64::MIN as i128));
        assert_eq!(g.to_i128(), Some(1i128 << 63));
    }

    #[test]
    fn ordering() {
        assert!(b(-5) < b(-4));
        assert!(b(-1) < b(0));
        assert!(b(0) < b(1));
        assert!(b(1 << 70) > b(i64::MAX as i128));
        assert!(b(-(1 << 70)) < b(i64::MIN as i128));
        // Mixed-tier comparisons around the boundary.
        assert!(b((i64::MAX as i128) + 1) > b(i64::MAX as i128));
        assert!(b((i64::MIN as i128) - 1) < b(i64::MIN as i128));
        assert_eq!(b(1 << 70).cmp(&b(1 << 70)), Ordering::Equal);
    }

    #[test]
    fn pow() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(10).pow(0), b(1));
        assert_eq!(b(-3).pow(3), b(-27));
        assert_eq!(b(2).pow(128).to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn knuth_d_addback_case() {
        // Exercise the rare add-back branch with a crafted divisor/dividend.
        let a = BigInt::from_sign_limbs(Sign::Positive, vec![0, 0, 0x8000_0000_0000_0000]);
        let d = BigInt::from_sign_limbs(Sign::Positive, vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = a.divmod(&d);
        assert_eq!(&(&q * &d) + &r, a);
        assert!(r.abs() < d.abs());
    }

    #[test]
    fn bits() {
        assert_eq!(b(0).bits(), 0);
        assert_eq!(b(1).bits(), 1);
        assert_eq!(b(255).bits(), 8);
        assert_eq!(b(256).bits(), 9);
        assert_eq!(b(1 << 64).bits(), 65);
        assert_eq!(b(i64::MIN as i128).bits(), 64);
    }

    #[test]
    fn to_i128_bounds() {
        assert_eq!(BigInt::from(i128::MAX).to_i128(), Some(i128::MAX));
        assert_eq!(BigInt::from(i128::MIN).to_i128(), Some(i128::MIN));
        let too_big = BigInt::from(i128::MAX) + BigInt::one();
        assert_eq!(too_big.to_i128(), None);
        let min_minus = BigInt::from(i128::MIN) - BigInt::one();
        assert_eq!(min_minus.to_i128(), None);
    }
}
