#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests.
#
# Usage: ./ci.sh [--offline]
#
# --offline skips dependency resolution against the network (useful in
# sandboxed environments with a primed cargo cache).
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
    CARGO_FLAGS+=(--offline)
fi

echo "==> fast lane: argus-linear unit tests"
# The exact-arithmetic substrate underpins every soundness claim; run its
# (cheap, seconds-long) suite first so number bugs fail the gate before
# the full build/test cycle spends minutes.
cargo test -q -p argus-linear "${CARGO_FLAGS[@]}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace "${CARGO_FLAGS[@]}"

echo "==> cargo test"
cargo test --workspace --release -q "${CARGO_FLAGS[@]}"

echo "==> fuzz smoke"
# Differential/metamorphic soundness harness over a fixed seed set, at two
# parallelism settings; the reports must match byte for byte. Any
# violation exits nonzero (and writes a reproducer under
# tests/golden/fuzz-repros/ for the regression suite to replay).
for seed in 1 42; do
    ./target/release/argus fuzz --seed "$seed" --cases 500 --jobs 0 --json \
        > "/tmp/argus-fuzz-$seed-j0.json"
    ./target/release/argus fuzz --seed "$seed" --cases 500 --jobs 1 --json \
        > "/tmp/argus-fuzz-$seed-j1.json"
    cmp "/tmp/argus-fuzz-$seed-j0.json" "/tmp/argus-fuzz-$seed-j1.json"
done

echo "==> bench smoke"
# CI-sized pass over every bench suite: catches workloads that rot (panic,
# hang, or stop compiling) without paying for full-scale numbers. The
# fm_redundancy suite is written to a scratch report so the regression
# gate below can read its counters; the committed BENCH_argus.json is
# untouched either way.
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin bench_report -- --smoke --suite fm_redundancy \
    --out /tmp/argus-fm-smoke.json
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin bench_report -- --smoke --out - > /dev/null

echo "==> bench regression gate (FM row-reduction floors)"
# Deterministic counters from the fm_redundancy suite must stay above the
# pinned floors (≥5× peak-row reduction on the FM-heavy corpus entry,
# subsumption/Chernikov/cache machinery actually firing). Wall time is
# not gated — only work done.
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin fm_gate -- /tmp/argus-fm-smoke.json

echo "==> OK"
