//! # argus-transform — Appendix A syntactic transformations
//!
//! The paper's termination method requires rules in a certain form: no
//! positive use of equality, every subgoal unifiable with the heads of all
//! rules of its predicate, and mutual recursion only where essential. Its
//! Appendix A describes three transformations that establish this form:
//!
//! * **positive-equality elimination** — `r(Z) :- U = f(Z), p(U)` becomes
//!   `r(Z) :- p(f(Z))`;
//! * **predicate splitting** — when a subgoal `p(t̄)` cannot unify with the
//!   heads of some rules for `p`, split `p` into `p1` (non-unifying heads)
//!   and `p2` (unifying heads) with bridge rules `p(X̄) :- p1(X̄)` and
//!   `p(X̄) :- p2(X̄)`, specializing call sites where possible;
//! * **safe unfolding** — when no rule for `p` has `p` as a subgoal,
//!   resolve every `p` subgoal away, removing `p` from its SCC.
//!
//! [`transform_fixed_phases`] runs the alternating driver the paper
//! recommends ("alternate phases of safe unfolding and predicate splitting,
//! and halt after a fixed number of phases, say 3 of each").

#![warn(missing_docs)]

pub mod magic;

pub use magic::{magic_rewrite, MagicProgram};

use argus_logic::program::{Atom, Literal, PredKey, Program, Rule};
use argus_logic::term::Term;
use argus_logic::unify::{mgu, unify_atoms, Subst};
use argus_logic::DepGraph;
use std::collections::BTreeSet;

/// Eliminate positive `=`/2 subgoals by applying their most general
/// unifiers. Rules whose equality subgoal cannot unify are dropped (they
/// can never succeed past it). Negative equalities (`\+ X = Y`, `\=`) are
/// left untouched.
pub fn eliminate_equality(program: &Program) -> Program {
    let mut out = Vec::new();
    'rules: for rule in &program.rules {
        let mut rule = rule.clone();
        loop {
            let pos = rule
                .body
                .iter()
                .position(|l| l.positive && &*l.atom.name == "=" && l.atom.args.len() == 2);
            let Some(i) = pos else { break };
            let lhs = rule.body[i].atom.args[0].clone();
            let rhs = rule.body[i].atom.args[1].clone();
            match mgu(&lhs, &rhs, true) {
                None => continue 'rules, // equality can never hold: drop rule
                Some(s) => {
                    rule.body.remove(i);
                    rule = apply_subst_rule(&s, &rule);
                }
            }
        }
        out.push(rule);
    }
    Program::from_rules(out)
}

fn apply_subst_rule(s: &Subst, rule: &Rule) -> Rule {
    Rule {
        head: s.resolve_atom(&rule.head),
        body: rule
            .body
            .iter()
            .map(|l| Literal { atom: s.resolve_atom(&l.atom), positive: l.positive, span: l.span })
            .collect(),
        span: rule.span,
    }
}

/// A fresh most-general atom `p(V1, …, Vn)` for bridge rules.
fn most_general_atom(name: &str, arity: usize) -> Atom {
    Atom::new(name, (0..arity).map(|i| Term::var(format!("V{i}"))).collect())
}

/// One step of predicate splitting, if applicable: find a positive subgoal
/// `p(t̄)` of an IDB predicate that fails to unify with the head of at least
/// one rule for `p` (while unifying with at least one — otherwise the
/// subgoal is dead), and split `p`. Returns `None` when no such subgoal
/// exists.
///
/// Following the paper: heads not unifying with `p(t̄)` are renamed to a
/// fresh `p1`-like predicate, unifying heads to `p2`; bridge rules are
/// added; every `p` subgoal in the program is specialized to `p1`/`p2`
/// when it unifies with heads of only one of the parts.
pub fn split_step(program: &Program, counter: &mut usize) -> Option<Program> {
    let idb = program.idb_predicates();
    // Find a splitting witness.
    let mut witness: Option<(PredKey, Atom)> = None;
    'search: for rule in &program.rules {
        for lit in &rule.body {
            let key = lit.atom.key();
            if !idb.contains(&key) {
                continue;
            }
            let procedure = program.procedure(&key);
            if procedure.len() < 2 {
                continue;
            }
            let unifying = procedure.iter().filter(|r| heads_unify(&lit.atom, &r.head)).count();
            if unifying > 0 && unifying < procedure.len() {
                witness = Some((key, lit.atom.clone()));
                break 'search;
            }
        }
    }
    let (pred, goal) = witness?;

    *counter += 1;
    let n1 = format!("{}__s{}a", pred.name, counter);
    let n2 = format!("{}__s{}b", pred.name, counter);

    // Partition and rename heads.
    let mut out: Vec<Rule> = Vec::new();
    for rule in &program.rules {
        if rule.head.key() == pred {
            let target = if heads_unify(&goal, &rule.head) { &n2 } else { &n1 };
            let mut r = rule.clone();
            r.head = Atom::new(target, r.head.args.clone());
            out.push(r);
        } else {
            out.push(rule.clone());
        }
    }
    // Bridge rules.
    let bridge_head = most_general_atom(&pred.name, pred.arity);
    out.push(Rule::new(
        bridge_head.clone(),
        vec![Literal::pos(Atom::new(&n1, bridge_head.args.clone()))],
    ));
    out.push(Rule::new(
        bridge_head.clone(),
        vec![Literal::pos(Atom::new(&n2, bridge_head.args.clone()))],
    ));

    // Specialize call sites. Heads of the two parts:
    let part_heads = |prog: &Vec<Rule>, name: &str| -> Vec<Atom> {
        prog.iter()
            .filter(|r| &*r.head.name == name && r.head.args.len() == pred.arity)
            .map(|r| r.head.clone())
            .collect()
    };
    let heads1 = part_heads(&out, &n1);
    let heads2 = part_heads(&out, &n2);
    for rule in out.iter_mut() {
        // Do not specialize inside the bridge rules themselves.
        if *rule.head.name == *pred.name && rule.head.args.len() == pred.arity {
            continue;
        }
        for lit in rule.body.iter_mut() {
            if lit.atom.key() != pred {
                continue;
            }
            let u1 = heads1.iter().any(|h| args_unify(&lit.atom, h));
            let u2 = heads2.iter().any(|h| args_unify(&lit.atom, h));
            match (u1, u2) {
                (true, false) => lit.atom.name = argus_logic::Sym::new(n1.as_str()),
                (false, true) => lit.atom.name = argus_logic::Sym::new(n2.as_str()),
                _ => {}
            }
        }
    }
    Some(Program::from_rules(out))
}

/// Does the subgoal atom unify with a (renamed-apart) rule head?
fn heads_unify(goal: &Atom, head: &Atom) -> bool {
    let renamed = head.rename_suffix("__h");
    unify_atoms(&mut Subst::new(), goal, &renamed, true)
}

/// Do the argument vectors unify, ignoring the predicate names? Used when
/// specializing a `p` call site against the renamed `p1`/`p2` heads.
fn args_unify(goal: &Atom, head: &Atom) -> bool {
    if goal.args.len() != head.args.len() {
        return false;
    }
    let renamed = head.rename_suffix("__h");
    let mut s = Subst::new();
    goal.args
        .iter()
        .zip(renamed.args.iter())
        .all(|(a, b)| argus_logic::unify::unify(&mut s, a, b, true))
}

/// Apply predicate splitting exhaustively (it terminates: rules are only
/// partitioned, never substituted into).
pub fn split_exhaustively(program: &Program) -> Program {
    let mut cur = program.clone();
    let mut counter = 0usize;
    while let Some(next) = split_step(&cur, &mut counter) {
        cur = next;
    }
    cur
}

/// Most resolvents one unfold step may be estimated to create. Unfolding
/// is cartesian (each host rule yields `|proc(p)|^occurrences` resolvents),
/// so without a budget a mutual-recursion ring whose rules make several
/// calls to the next member explodes doubly-exponentially across rounds.
/// Skipped candidates simply stay folded — the analysis is still sound on
/// the untransformed SCC, exactly as for directly self-recursive predicates.
const UNFOLD_GROWTH_BUDGET: u64 = 256;

/// One step of safe unfolding, if applicable.
///
/// A predicate `p` is *safely unfoldable* when it has rules, no rule for
/// `p` has a `p` subgoal (no direct self-recursion), `p` occurs as a
/// positive subgoal somewhere, never occurs as a negative subgoal (negation
/// cannot be unfolded by resolution), and `p` is not among `protect`
/// (query/entry predicates must keep their definitions). Unfolding resolves
/// every positive `p` subgoal against every rule for `p` — capped by
/// [`UNFOLD_GROWTH_BUDGET`] so dense mutual rings cannot blow up the
/// program. If afterwards `p` is unreferenced, its rules are discarded.
pub fn unfold_step(program: &Program, protect: &BTreeSet<PredKey>) -> Option<Program> {
    let graph = DepGraph::build(program);
    let idb = program.idb_predicates();

    // Candidates, preferring predicates inside mutual-recursion SCCs (the
    // paper's motivation: shrink SCCs); fall back to any eligible one that
    // actually simplifies the program structure.
    let mut candidates: Vec<&PredKey> = idb
        .iter()
        .filter(|p| {
            // Protected (root) predicates may still be unfolded at their
            // call sites; protection only prevents deleting their rules.
            // No direct self-recursion.
            let self_rec =
                program.procedure(p).iter().any(|r| r.body.iter().any(|l| l.atom.key() == **p));
            if self_rec {
                return false;
            }
            let mut pos_occurs = false;
            for r in &program.rules {
                for l in &r.body {
                    if l.atom.key() == **p {
                        if !l.positive {
                            return false;
                        }
                        pos_occurs = true;
                    }
                }
            }
            if !pos_occurs {
                return false;
            }
            // Affordability: resolving every occurrence against every rule
            // for `p` multiplies clauses — a host rule with k positive `p`
            // subgoals becomes |proc(p)|^k resolvents. On many-call mutual
            // rings that is exponential across unfold rounds, so candidates
            // whose resolvent estimate exceeds the budget are skipped.
            let nrules = program.procedure(p).len() as u64;
            let mut est: u64 = 0;
            for r in &program.rules {
                if r.head.key() == **p {
                    continue;
                }
                let occ =
                    r.body.iter().filter(|l| l.positive && l.atom.key() == **p).count() as u32;
                if occ > 0 {
                    est = est.saturating_add(nrules.saturating_pow(occ));
                    if est > UNFOLD_GROWTH_BUDGET {
                        return false;
                    }
                }
            }
            true
        })
        .collect();
    // Prefer members of nontrivial SCCs: unfolding them shrinks the SCC,
    // which is the termination argument for repeated application.
    candidates.sort_by_key(|p| {
        let in_mutual = graph.scc_id(p).map(|id| graph.scc_is_mutual(id)).unwrap_or(false);
        if in_mutual {
            0
        } else {
            1
        }
    });
    let pred = candidates
        .into_iter()
        .find(|p| graph.scc_id(p).map(|id| graph.scc_is_mutual(id)).unwrap_or(false))?
        .clone();

    Some(unfold_predicate(program, &pred, protect))
}

/// Unfold all positive occurrences of `pred` (which must be safely
/// unfoldable) and drop its rules if it becomes unreferenced.
pub fn unfold_predicate(program: &Program, pred: &PredKey, protect: &BTreeSet<PredKey>) -> Program {
    let procedure: Vec<Rule> = program.procedure(pred).into_iter().cloned().collect();
    let mut out: Vec<Rule> = Vec::new();
    let mut fresh = 0usize;

    for rule in &program.rules {
        if &rule.head.key() == pred {
            out.push(rule.clone()); // kept for now; maybe dropped below
            continue;
        }
        // Expand the first positive occurrence of pred; repeat until none.
        let mut pending = vec![rule.clone()];
        let mut done: Vec<Rule> = Vec::new();
        while let Some(r) = pending.pop() {
            let occ = r.body.iter().position(|l| l.positive && &l.atom.key() == pred);
            let Some(i) = occ else {
                done.push(r);
                continue;
            };
            let r_vars: std::collections::BTreeSet<_> = r.vars().into_iter().collect();
            for prule in &procedure {
                // Rename the resolving rule apart, retrying until its fresh
                // variables are disjoint from the target rule's (the target
                // may already contain `__uN` names from earlier unfolds).
                let prule = loop {
                    fresh += 1;
                    let candidate = prule.rename_suffix(&format!("__u{fresh}"));
                    if candidate.vars().iter().all(|v| !r_vars.contains(v)) {
                        break candidate;
                    }
                };
                let mut s = Subst::new();
                if !unify_atoms(&mut s, &r.body[i].atom, &prule.head, true) {
                    continue;
                }
                let mut body = Vec::new();
                body.extend_from_slice(&r.body[..i]);
                body.extend_from_slice(&prule.body);
                body.extend_from_slice(&r.body[i + 1..]);
                let new_rule =
                    apply_subst_rule(&s, &Rule { head: r.head.clone(), body, span: r.span });
                pending.push(new_rule);
            }
        }
        out.extend(done);
    }

    // Discard pred's own rules if nothing references it anymore.
    let referenced = protect.contains(pred)
        || out
            .iter()
            .filter(|r| &r.head.key() != pred)
            .any(|r| r.body.iter().any(|l| &l.atom.key() == pred));
    if !referenced {
        out.retain(|r| &r.head.key() != pred);
    }
    Program::from_rules(out)
}

/// Drop rules for IDB predicates that are unreachable from `roots` through
/// positive or negative subgoals.
pub fn drop_unreachable(program: &Program, roots: &BTreeSet<PredKey>) -> Program {
    let mut reach: BTreeSet<PredKey> = roots.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &program.rules {
            if reach.contains(&rule.head.key()) {
                for l in &rule.body {
                    if reach.insert(l.atom.key()) {
                        changed = true;
                    }
                }
            }
        }
    }
    Program::from_rules(
        program.rules.iter().filter(|r| reach.contains(&r.head.key())).cloned().collect(),
    )
}

/// Report of a full preprocessing run.
#[derive(Debug, Clone, Default)]
pub struct TransformReport {
    /// Number of unfolding phases that changed the program.
    pub unfold_phases: usize,
    /// Number of splitting phases that changed the program.
    pub split_phases: usize,
}

/// The driver recommended by the paper: eliminate positive equality, then
/// alternate safe unfolding and predicate splitting for at most `phases`
/// rounds of each (the paper suggests 3), finally dropping rules
/// unreachable from `roots`.
pub fn transform_fixed_phases(
    program: &Program,
    roots: &BTreeSet<PredKey>,
    phases: usize,
) -> (Program, TransformReport) {
    let mut cur = eliminate_equality(program);
    let mut report = TransformReport::default();
    let mut counter = 0usize;
    for _ in 0..phases {
        let mut changed = false;
        // Safe unfolding until it no longer applies.
        while let Some(next) = unfold_step(&cur, roots) {
            if next == cur {
                break;
            }
            cur = next;
            changed = true;
            report.unfold_phases += 1;
        }
        // One exhaustive splitting pass.
        let mut split_changed = false;
        while let Some(next) = split_step(&cur, &mut counter) {
            cur = next;
            split_changed = true;
        }
        if split_changed {
            report.split_phases += 1;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    cur = drop_unreachable(&cur, roots);
    (cur, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::parser::parse_program;

    fn roots(specs: &[(&str, usize)]) -> BTreeSet<PredKey> {
        specs.iter().map(|(n, a)| PredKey::new(*n, *a)).collect()
    }

    #[test]
    fn equality_elimination_paper_example() {
        // r(Z) :- U = f(Z), p(U)  ==>  r(Z) :- p(f(Z)).
        let p = parse_program("r(Z) :- U = f(Z), p(U).").unwrap();
        let out = eliminate_equality(&p);
        assert_eq!(out.rules.len(), 1);
        assert_eq!(out.rules[0].to_string(), "r(Z) :- p(f(Z)).");
    }

    #[test]
    fn equality_elimination_drops_impossible_rules() {
        let p = parse_program("r(Z) :- a = b, p(Z).\nr(Z) :- q(Z).").unwrap();
        let out = eliminate_equality(&p);
        assert_eq!(out.rules.len(), 1);
        assert_eq!(&*out.rules[0].body[0].atom.name, "q");
    }

    #[test]
    fn equality_elimination_keeps_negative_equality() {
        let p = parse_program("r(Z) :- \\+ Z = a, p(Z).").unwrap();
        let out = eliminate_equality(&p);
        assert_eq!(out.rules[0].body.len(), 2);
    }

    #[test]
    fn splitting_appendix_example() {
        // Appendix A's p/q/r example: subgoal p(f(Z)) does not unify with
        // p(a), so p splits.
        let p = parse_program(
            "p(a).\n\
             p(X) :- q(X, Y), p(Y).\n\
             r(Z) :- p(f(Z)).",
        )
        .unwrap();
        let mut counter = 0;
        let out = split_step(&p, &mut counter).expect("splitting applies");
        // p now has exactly the two bridge rules.
        let bridge: Vec<_> = out.procedure(&PredKey::new("p", 1));
        assert_eq!(bridge.len(), 2);
        assert!(bridge.iter().all(|r| r.body.len() == 1));
        // r's subgoal is specialized to the unifying part.
        let r = out.procedure(&PredKey::new("r", 1))[0];
        assert_ne!(&*r.body[0].atom.name, "p");
        assert!(r.body[0].atom.name.contains("__s1"));
        // And splitting no longer applies... the recursive p(Y) subgoal is
        // most general so it unifies with both parts and stays `p`.
        assert!(split_step(&out, &mut counter).is_none());
    }

    #[test]
    fn splitting_not_applicable_when_all_unify() {
        let p = parse_program("p([]).\np([X|Xs]) :- p(Xs).\nr(Z) :- p(Z).").unwrap();
        let mut counter = 0;
        assert!(split_step(&p, &mut counter).is_none());
    }

    #[test]
    fn safe_unfolding_removes_mutual_recursion() {
        // q :- p; p defined without self-recursion through q... the
        // appendix A.1 shape: p and q mutually recursive, p unfoldable.
        let p = parse_program(
            "p(g(X)) :- e(X).\n\
             p(g(X)) :- q(f(X)).\n\
             q(Y) :- p(Y).\n\
             q(f(Z)) :- p(Z), q(Z).",
        )
        .unwrap();
        let out = unfold_predicate(&p, &PredKey::new("p", 1), &roots(&[("p", 1)]));
        // Matches the appendix's displayed result: q's rules become
        // self-contained (no p subgoals in q rules).
        for r in out.procedure(&PredKey::new("q", 1)) {
            assert!(r.body.iter().all(|l| &*l.atom.name != "p"), "q rule still mentions p: {r}");
        }
        // p's own rules survive (p is protected as a root).
        assert!(!out.procedure(&PredKey::new("p", 1)).is_empty());
        let graph = DepGraph::build(&out);
        assert!(!graph.same_scc(&PredKey::new("p", 1), &PredKey::new("q", 1)));
    }

    #[test]
    fn unfold_drops_unreferenced_helper() {
        let p = parse_program(
            "top(X) :- helper(X).\n\
             helper(a).\n\
             helper(b).",
        )
        .unwrap();
        let out = unfold_predicate(&p, &PredKey::new("helper", 1), &roots(&[("top", 1)]));
        assert!(out.procedure(&PredKey::new("helper", 1)).is_empty());
        assert_eq!(out.procedure(&PredKey::new("top", 1)).len(), 2);
    }

    #[test]
    fn unfolding_respects_negative_occurrences() {
        // helper occurs negatively: unfold_step must not choose it.
        let p = parse_program(
            "a(X) :- b(X).\n\
             b(X) :- \\+ helper(X), a(X).\n\
             helper(c).",
        )
        .unwrap();
        // a and b are mutually recursive; helper occurs only negatively.
        let step = unfold_step(&p, &roots(&[("a", 1)]));
        if let Some(out) = step {
            // If anything was unfolded it must not be helper.
            assert!(!out.procedure(&PredKey::new("helper", 1)).is_empty());
        }
    }

    #[test]
    fn unfold_skips_candidates_over_growth_budget() {
        // A 3-predicate mutual ring where each rule makes 4 calls to the
        // next member: unfolding any member would create 5^4 = 625 > 256
        // resolvents per host rule (and the next round 5^16), so the budget
        // must reject every candidate and the driver must terminate with
        // the ring intact rather than exploding.
        let src = argus_corpus::find("mutual_fib_ring").unwrap().source;
        let p = parse_program(src).unwrap();
        let roots = roots(&[("f0", 2)]);
        assert!(unfold_step(&p, &roots).is_none(), "budget should veto all ring members");
        let (out, _) = transform_fixed_phases(&p, &roots, 3);
        assert!(!out.procedure(&PredKey::new("f1", 2)).is_empty());
        assert!(!out.procedure(&PredKey::new("f2", 2)).is_empty());
    }

    #[test]
    fn full_driver_on_appendix_a1() {
        // Example A.1: after safe unfolding + splitting + unfolding, the
        // program exposes that p is not genuinely recursive.
        let p = parse_program(
            "p(g(X)) :- e(X).\n\
             p(g(X)) :- q(f(X)).\n\
             q(Y) :- p(Y).\n\
             q(f(Z)) :- p(Z), q(Z).",
        )
        .unwrap();
        let (out, report) = transform_fixed_phases(&p, &roots(&[("p", 1)]), 3);
        assert!(report.unfold_phases > 0);
        let graph = DepGraph::build(&out);
        // p must no longer be recursive (directly or mutually).
        assert!(
            !graph.is_recursive(&PredKey::new("p", 1)),
            "p should be exposed as nonrecursive:\n{out}"
        );
    }

    #[test]
    fn drop_unreachable_keeps_roots_closure() {
        let p = parse_program("a(X) :- b(X).\nb(c).\nunrelated(d).").unwrap();
        let out = drop_unreachable(&p, &roots(&[("a", 1)]));
        assert_eq!(out.rules.len(), 2);
        assert!(out.procedure(&PredKey::new("unrelated", 1)).is_empty());
    }

    #[test]
    fn driver_is_identity_on_clean_programs() {
        let p = parse_program(
            "append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        )
        .unwrap();
        let (out, report) = transform_fixed_phases(&p, &roots(&[("append", 3)]), 3);
        assert_eq!(out, p);
        assert_eq!(report.unfold_phases, 0);
        assert_eq!(report.split_phases, 0);
    }
}
